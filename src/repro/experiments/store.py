"""Sharded JSONL persistence for experiment results.

Each sweep run owns a directory.  Records append to size-capped JSONL
shards — ``results-00000.jsonl``, ``results-00001.jsonl``, ... — each
with a tiny sibling index (``.idx``: one ``spec_hash status`` line per
record) so cache lookups never parse full records.  ``sweep.json``
holds the expanded sweep spec.  The legacy single-file layout
(``results.jsonl``) remains readable: it sorts before every shard, and
new appends roll into shards.

Records are append-only; when a spec is re-run (``--force``) the newest
record wins on load.  Aggregation is streaming: :meth:`ResultStore.iter_records`
yields shard by shard, and ``latest()``/``ok_hashes()`` fold that
stream (or the indexes alone), so a million-record run never
materialises every record at once.

Writers coordinate through advisory lockfiles: the scheduler holds a
run-level ``store.lock`` (one sweep per directory at a time, with
stale-lock takeover), and every append takes a per-shard lock so the
``queue`` backend's independent workers can interleave safely.
"""

from __future__ import annotations

import json
import subprocess
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Set, Union

from repro.experiments.exec.locks import FileLock

RESULTS_FILE = "results.jsonl"          # legacy single-file layout
SWEEP_FILE = "sweep.json"
WRITE_LOCK_FILE = "store.lock"
SHARD_PREFIX = "results-"
SHARD_SUFFIX = ".jsonl"
INDEX_SUFFIX = ".idx"

#: Default shard roll-over threshold.  Small enough that aggregation
#: granularity stays fine-grained, large enough that a quick sweep
#: stays single-shard.
DEFAULT_SHARD_MAX_BYTES = 4 * 1024 * 1024

#: How long an append waits on a shard lock before assuming the holder
#: is gone (appends hold locks for milliseconds).
_SHARD_LOCK_STALE_S = 30.0

#: A run-level lock with no heartbeat for this long is stale.  The
#: scheduler refreshes it on every persisted record.
RUN_LOCK_STALE_S = 3600.0


class StoreCorruptionWarning(UserWarning):
    """Corrupt/truncated JSONL lines were skipped on load."""


@dataclass
class StoredResult:
    """One persisted experiment execution (ok or failed)."""

    spec_hash: str
    experiment: str
    params: Dict[str, object]
    repeat: int
    seed: int
    status: str                      # "ok" | "error"
    series: Dict[str, object] = field(default_factory=dict)
    text: str = ""
    error: Optional[str] = None
    wall_time_s: float = 0.0
    timestamp: float = 0.0
    sweep: str = ""
    git_commit: Optional[str] = None
    git_dirty: Optional[bool] = None
    worker: Optional[str] = None     # queue-backend worker id, if any
    profile: Optional[Dict[str, object]] = None  # --profile attribution

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def group_key(self) -> str:
        """Spec identity modulo the seed axis — the repeat-group id.

        Repeat-aware sweeps vary only ``seed`` (and the repeat index)
        between re-executions of one scenario, so records sharing this
        key are statistical repeats of the same measurement; the
        analysis layer aggregates samples per key.  Canonical JSON so
        the key is stable across param insertion order.
        """
        params = {
            k: self.params[k] for k in sorted(self.params) if k != "seed"
        }
        return json.dumps(
            {"experiment": self.experiment, "params": params},
            sort_keys=True,
        )

    @property
    def group_label(self) -> str:
        """Human-readable form of :attr:`group_key`.

        ``experiment[k=v,...]`` with the seed axis elided, matching the
        spec-label format used in sweep progress lines.
        """
        params = ",".join(
            f"{k}={self.params[k]}" for k in sorted(self.params) if k != "seed"
        )
        return f"{self.experiment}[{params}]" if params else self.experiment


class LoadResult(List[StoredResult]):
    """``load()``'s list of records plus its corrupt-line count."""

    def __init__(self, records=(), skipped: int = 0):
        super().__init__(records)
        self.skipped = skipped


def git_metadata(repo_dir: Union[str, Path, None] = None) -> Dict[str, object]:
    """Current commit hash and dirty flag, or Nones outside a repo."""
    cwd = str(repo_dir) if repo_dir else None
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return {"git_commit": None, "git_dirty": None}
    if commit.returncode != 0:
        return {"git_commit": None, "git_dirty": None}
    return {
        "git_commit": commit.stdout.strip(),
        "git_dirty": bool(status.stdout.strip()),
    }


class ResultStore:
    """Append/stream/query interface over one run directory."""

    def __init__(
        self,
        root: Union[str, Path],
        shard_max_bytes: int = DEFAULT_SHARD_MAX_BYTES,
    ):
        self.root = Path(root)
        self.shard_max_bytes = shard_max_bytes

    # ----------------------------- layout -----------------------------
    @property
    def results_path(self) -> Path:
        """The legacy single-file path (pre-shard stores)."""
        return self.root / RESULTS_FILE

    @property
    def sweep_path(self) -> Path:
        return self.root / SWEEP_FILE

    def shard_paths(self) -> List[Path]:
        """Every results file in append order: legacy first, then
        shards by sequence number."""
        paths = []
        if self.results_path.is_file():
            paths.append(self.results_path)
        try:
            shards = sorted(
                p for p in self.root.iterdir()
                if p.name.startswith(SHARD_PREFIX)
                and p.name.endswith(SHARD_SUFFIX)
            )
        except OSError:
            shards = []
        return paths + shards

    @staticmethod
    def index_path(shard: Path) -> Path:
        return shard.with_suffix(shard.suffix + INDEX_SUFFIX)

    def _shard_path(self, seq: int) -> Path:
        return self.root / f"{SHARD_PREFIX}{seq:05d}{SHARD_SUFFIX}"

    def _current_seq(self) -> int:
        seqs = []
        for path in self.shard_paths():
            if path.name == RESULTS_FILE:
                continue
            try:
                seqs.append(int(path.name[len(SHARD_PREFIX):-len(SHARD_SUFFIX)]))
            except ValueError:
                continue
        return max(seqs) if seqs else 0

    def exists(self) -> bool:
        return bool(self.shard_paths())

    # ---------------------------- sweep meta ---------------------------
    def save_sweep(self, sweep_dict: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_path.write_text(json.dumps(sweep_dict, indent=2) + "\n")

    def load_sweep_name(self) -> Optional[str]:
        """Name recorded in ``sweep.json``, or None if absent/corrupt."""
        if not self.sweep_path.is_file():
            return None
        try:
            name = json.loads(self.sweep_path.read_text()).get("name")
        except (json.JSONDecodeError, OSError, AttributeError):
            return None
        return name if isinstance(name, str) else None

    # ----------------------------- locking -----------------------------
    def writer_lock(self, owner: Optional[str] = None) -> FileLock:
        """The run-level "one scheduler per run directory" lock.

        Advisory: a live holder blocks a second ``run_sweep`` on the
        same directory; a crashed holder's lock goes stale after
        :data:`RUN_LOCK_STALE_S` without heartbeats and is taken over.
        ``queue``-backend workers do *not* take this lock — they
        serialise on per-shard locks inside :meth:`append`.
        """
        return FileLock(
            self.root / WRITE_LOCK_FILE,
            owner=owner,
            stale_after_s=RUN_LOCK_STALE_S,
        )

    # ----------------------------- writing -----------------------------
    def append(self, record: StoredResult) -> Path:
        """Durably append one record, rolling shards at the size cap.

        The write happens under the target shard's advisory lock, so
        concurrent writers (queue workers on any host sharing the
        filesystem) interleave whole records, never partial lines.  The
        index line lands *after* the record: a crash between the two
        costs at worst one cache miss, never a phantom record.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(asdict(record)) + "\n"
        seq = self._current_seq()
        while True:
            shard = self._shard_path(seq)
            lock = FileLock(
                shard.with_suffix(shard.suffix + ".lock"),
                stale_after_s=_SHARD_LOCK_STALE_S,
            )
            lock.acquire(wait_s=_SHARD_LOCK_STALE_S)
            try:
                if (
                    shard.is_file()
                    and shard.stat().st_size >= self.shard_max_bytes
                ):
                    seq += 1
                    continue  # full: roll over to the next shard
                with shard.open("a") as fh:
                    fh.write(line)
                with self.index_path(shard).open("a") as fh:
                    fh.write(f"{record.spec_hash} {record.status}\n")
                return shard
            finally:
                lock.release()

    def append_many(self, records: List[StoredResult]) -> List[Path]:
        """Durably append a batch under one lock acquire per shard.

        Same layout and crash ordering as :meth:`append` (records before
        index lines, roll-over at the size cap mid-batch), but the
        common case — a batch that fits the current shard — costs one
        lock round-trip and one buffered write instead of one per
        record.  Queue workers drain their completion backlog through
        this.
        """
        if not records:
            return []
        self.root.mkdir(parents=True, exist_ok=True)
        pending = list(records)
        shards: List[Path] = []
        seq = self._current_seq()
        while pending:
            shard = self._shard_path(seq)
            lock = FileLock(
                shard.with_suffix(shard.suffix + ".lock"),
                stale_after_s=_SHARD_LOCK_STALE_S,
            )
            lock.acquire(wait_s=_SHARD_LOCK_STALE_S)
            try:
                size = shard.stat().st_size if shard.is_file() else 0
                if size >= self.shard_max_bytes:
                    seq += 1
                    continue  # full: roll over to the next shard
                lines: List[str] = []
                index_lines: List[str] = []
                while pending and size < self.shard_max_bytes:
                    record = pending.pop(0)
                    line = json.dumps(asdict(record)) + "\n"
                    lines.append(line)
                    index_lines.append(f"{record.spec_hash} {record.status}\n")
                    size += len(line)
                with shard.open("a") as fh:
                    fh.write("".join(lines))
                with self.index_path(shard).open("a") as fh:
                    fh.write("".join(index_lines))
                shards.extend([shard] * len(lines))
            finally:
                lock.release()
        return shards

    # ----------------------------- reading -----------------------------
    def _open_shard(self, path: Path) -> IO[str]:
        """Single seam for shard reads (tests instrument laziness here)."""
        return path.open()

    def _iter_shard(
        self, shard: Path, counts: Optional[Dict[str, int]] = None
    ) -> Iterator[StoredResult]:
        try:
            fh = self._open_shard(shard)
        except OSError:
            return
        with fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    yield StoredResult(**json.loads(raw))
                except (json.JSONDecodeError, TypeError):
                    if counts is not None:
                        counts["skipped"] += 1

    def _iter(self, counts: Optional[Dict[str, int]]) -> Iterator[StoredResult]:
        for shard in self.shard_paths():
            yield from self._iter_shard(shard, counts)

    def iter_records(self) -> Iterator[StoredResult]:
        """Stream every record in append order, shard by shard.

        Constant memory in the record count — the aggregation path for
        stores too large to :meth:`load` whole.  Corrupt lines are
        skipped silently here; use :meth:`load` when the skip count
        matters.
        """
        return self._iter(counts=None)

    def load(self) -> LoadResult:
        """Every record in append order, with corrupt lines counted.

        Returns a list (a :class:`LoadResult`) whose ``skipped``
        attribute says how many corrupt/truncated lines were dropped; a
        nonzero count also raises a :class:`StoreCorruptionWarning` so
        partial data loss is visible instead of silent.
        """
        counts = {"skipped": 0}
        records = list(self._iter(counts))
        if counts["skipped"]:
            warnings.warn(
                f"result store {self.root}: skipped {counts['skipped']} "
                f"corrupt JSONL line(s) — data from interrupted or "
                f"concurrent writes was lost",
                StoreCorruptionWarning,
                stacklevel=2,
            )
        return LoadResult(records, skipped=counts["skipped"])

    def latest(self) -> Dict[str, StoredResult]:
        """Newest record per spec hash (re-runs supersede old results).

        Folds the record stream incrementally: memory scales with the
        number of distinct specs, not the number of stored records.
        """
        newest: Dict[str, StoredResult] = {}
        for record in self.iter_records():
            newest[record.spec_hash] = record
        return newest

    def ok_hashes(self) -> Set[str]:
        """Spec hashes whose newest record succeeded — the skip cache.

        Served from the per-shard indexes (two tokens per record) when
        present; shards without an index (the legacy file, or an index
        lost to a crash) fall back to streaming their full records.  An
        index can trail its shard by the crash window's final record —
        that costs one spurious re-run, never a false cache hit.
        """
        newest: Dict[str, str] = {}
        for shard in self.shard_paths():
            index = self.index_path(shard)
            if index.is_file():
                try:
                    with index.open() as fh:
                        for raw in fh:
                            parts = raw.split()
                            if len(parts) == 2:
                                newest[parts[0]] = parts[1]
                    continue
                except OSError:
                    pass
            for record in self._iter_shard(shard):
                newest[record.spec_hash] = record.status
        return {h for h, status in newest.items() if status == "ok"}

    def query(
        self,
        experiment: Optional[str] = None,
        status: Optional[str] = None,
    ) -> Iterator[StoredResult]:
        """Newest-per-spec records filtered by experiment id and status."""
        for record in self.latest().values():
            if experiment is not None and record.experiment != experiment:
                continue
            if status is not None and record.status != status:
                continue
            yield record
