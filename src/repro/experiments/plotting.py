"""Per-metric distribution plots for the HTML report.

Two backends behind one interface:

* ``svg`` (default) — hand-rolled strip plots emitted as plain SVG
  text.  No dependencies, and byte-deterministic: the same samples
  always render the same markup, so golden tests can hash the output.
* ``matplotlib`` — box plots via matplotlib when it is installed.
  The import is strictly lazy; requesting this backend without the
  package raises :class:`PlotError` instead of ``ImportError`` at
  module load, because the container image does not ship matplotlib.

Both return ``(mime_type, payload_bytes)`` so the renderer can embed
either inline SVG or a base64 PNG without caring which backend ran.
"""
from __future__ import annotations

from typing import Dict, List, Sequence, Tuple
from xml.sax.saxutils import escape

PlotPayload = Tuple[str, bytes]

#: Deterministic qualitative palette (Okabe-Ito, colourblind-safe).
PALETTE = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7",
    "#e69f00", "#56b4e9", "#f0e442", "#999999",
]


class PlotError(RuntimeError):
    """Raised when a plot backend is unavailable or misused."""


def _fmt(value: float) -> str:
    """Stable float formatting for SVG coordinates and labels."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _spread(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:  # degenerate axis: pad so points stay visible
        pad = abs(lo) * 0.05 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def strip_plot_svg(
    metric: str,
    groups: Dict[str, List[float]],
    width: int = 640,
    row_height: int = 36,
) -> bytes:
    """One horizontal strip (dot row) per group, shared x axis.

    A strip plot shows every repeat rather than a summary, which is the
    honest rendering for the n=5..30 sample sizes sweeps produce; the
    median is marked with a vertical tick per row.
    """
    if not groups:
        raise PlotError("strip_plot_svg needs at least one group")
    names = sorted(groups)
    all_values = [v for name in names for v in groups[name]]
    if not all_values:
        raise PlotError(f"no samples to plot for metric {metric!r}")
    lo, hi = _spread(all_values)
    margin_l, margin_r, margin_t, margin_b = 170, 20, 28, 24
    plot_w = width - margin_l - margin_r
    height = margin_t + row_height * len(names) + margin_b

    def x_of(value: float) -> float:
        return margin_l + (value - lo) / (hi - lo) * plot_w

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="12">',
        f'<title>{escape(metric)}</title>',
        f'<text x="{margin_l}" y="16" font-weight="bold">'
        f'{escape(metric)}</text>',
    ]
    for index, name in enumerate(names):
        values = groups[name]
        colour = PALETTE[index % len(PALETTE)]
        cy = margin_t + row_height * index + row_height / 2
        parts.append(
            f'<text x="8" y="{_fmt(cy + 4)}">{escape(name[:24])}</text>'
        )
        parts.append(
            f'<line x1="{margin_l}" y1="{_fmt(cy)}" '
            f'x2="{width - margin_r}" y2="{_fmt(cy)}" '
            f'stroke="#dddddd"/>'
        )
        for value in sorted(values):
            parts.append(
                f'<circle cx="{_fmt(x_of(value))}" cy="{_fmt(cy)}" '
                f'r="4" fill="{colour}" fill-opacity="0.55"/>'
            )
        ordered = sorted(values)
        mid = len(ordered) // 2
        median = (
            ordered[mid] if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2
        )
        parts.append(
            f'<line x1="{_fmt(x_of(median))}" y1="{_fmt(cy - 10)}" '
            f'x2="{_fmt(x_of(median))}" y2="{_fmt(cy + 10)}" '
            f'stroke="{colour}" stroke-width="2"/>'
        )
    axis_y = height - margin_b + 14
    parts.append(
        f'<text x="{margin_l}" y="{axis_y}">{_fmt(lo)}</text>'
    )
    parts.append(
        f'<text x="{width - margin_r}" y="{axis_y}" '
        f'text-anchor="end">{_fmt(hi)}</text>'
    )
    parts.append('</svg>')
    return "".join(parts).encode("utf-8")


def _matplotlib_plot(
    metric: str, groups: Dict[str, List[float]]
) -> PlotPayload:
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - image lacks matplotlib
        raise PlotError(
            "matplotlib backend requested but matplotlib is not "
            "installed; use the default 'svg' backend instead"
        ) from exc
    names = sorted(groups)
    fig, ax = plt.subplots(figsize=(6.4, 0.6 * len(names) + 1.2))
    ax.boxplot(
        [groups[name] for name in names],
        vert=False, labels=names, showmeans=True,
    )
    ax.set_title(metric)
    fig.tight_layout()
    import io
    buffer = io.BytesIO()
    fig.savefig(buffer, format="png", dpi=96)
    plt.close(fig)
    return "image/png", buffer.getvalue()


def _svg_plot(metric: str, groups: Dict[str, List[float]]) -> PlotPayload:
    return "image/svg+xml", strip_plot_svg(metric, groups)


_BACKENDS = {
    "svg": _svg_plot,
    "matplotlib": _matplotlib_plot,
}


def get_plotter(backend: str = "svg"):
    """Return ``plot(metric, groups) -> (mime, payload)`` for a backend."""
    try:
        return _BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise PlotError(
            f"unknown plot backend {backend!r} (known: {known})"
        ) from None
