"""Sweep scheduler: expand, cache-check, dispatch to an executor backend.

:func:`run_sweep` is a thin scheduler over
:mod:`repro.experiments.exec`: it expands the
:class:`~repro.experiments.spec.SweepSpec`, collapses duplicates,
consults the run directory's sharded :class:`ResultStore` for specs
whose content hash already has a successful record (the cache), takes
the run-level writer lock, and hands the pending payloads to the chosen
:class:`~repro.experiments.exec.backends.ExecutorBackend` — ``serial``,
``pool`` (the historical fork pool, the default), or ``queue`` (the
durable work queue that ``repro worker`` processes can join from any
host sharing the filesystem).  Every backend persists records as they
land, so an interrupted sweep resumes without re-executing completed
specs, and failures stay isolated per spec.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.exec.backends import (
    ExecutionContext,
    ExecutorBackend,
    executor_by_name,
)
from repro.experiments.spec import ExperimentSpec, SpecError, SweepSpec
from repro.experiments.store import ResultStore, StoredResult, git_metadata


@dataclass
class SweepOutcome:
    """Summary of one :func:`run_sweep` invocation."""

    sweep: str
    out_dir: Path
    executed: List[StoredResult] = field(default_factory=list)
    cached: int = 0
    backend: str = "pool"

    @property
    def failed(self) -> List[StoredResult]:
        return [r for r in self.executed if not r.ok]

    @property
    def total(self) -> int:
        return len(self.executed) + self.cached

    @property
    def ok(self) -> bool:
        return not self.failed


def _execute_spec(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: run one spec, never raise.

    Top-level (picklable) so it works under both fork and spawn start
    methods.  Returns a partial :class:`StoredResult` dict; the caller
    (backend or queue worker) adds timestamps and git metadata before
    persisting.

    The global ``random`` module is seeded from the spec for any
    experiment that consumes ambient randomness; note the current
    registry entries are internally deterministic (instance-seeded
    RNGs), so repeats of the same params reproduce identical series.
    """
    from repro.harness.experiments import run_experiment, shared_rpc_comparison

    rng_state = random.getstate()
    random.seed(payload["seed"])
    # Persisted wall times must not depend on which specs shared a
    # worker process: drop cross-spec memoization before timing.
    shared_rpc_comparison.cache_clear()
    start = time.perf_counter()
    record = {
        "spec_hash": payload["spec_hash"],
        "experiment": payload["experiment"],
        "params": payload["params"],
        "repeat": payload["repeat"],
        "seed": payload["seed"],
    }
    # --profile rides the payload (not the spec hash: profiling never
    # changes what a spec computes, so cached records stay valid).
    profiler = None
    if payload.get("profile"):
        from repro.obs.profiler import SimProfiler
        from repro.sim import engine as _engine

        # Install directly rather than via the profile() context
        # manager: a worker process is single-spec-at-a-time, and a
        # leftover profiler from a crashed spec must not wedge the
        # next one, so install unconditionally.
        profiler = SimProfiler()
        _engine.set_profiler(profiler)
    try:
        result = run_experiment(payload["experiment"], **payload["params"])
    except Exception:
        record.update(
            status="error",
            error=traceback.format_exc(limit=8),
            series={},
            text="",
        )
    else:
        record.update(
            status="ok", error=None, series=result.series, text=result.text
        )
    finally:
        if profiler is not None:
            from repro.sim import engine as _engine

            _engine.set_profiler(None)
            record["profile"] = profiler.to_dict()
        # The serial path runs in the caller's process: leave its
        # global RNG stream the way we found it.
        random.setstate(rng_state)
    record["wall_time_s"] = time.perf_counter() - start
    return record


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given.

    ``REPRO_JOBS`` overrides (uncapped, like an explicit ``--jobs``);
    otherwise the CPU count, soft-capped at 8 so a sweep on a large
    shared box does not monopolise it by default.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return max(1, min(8, os.cpu_count() or 1))


def _pool_context():
    """Prefer fork (shares the warmed interpreter); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_sweep(
    sweep: SweepSpec,
    out_dir: Union[str, Path],
    jobs: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    backend: Union[str, ExecutorBackend, None] = None,
    repeats: Optional[int] = None,
    telemetry: bool = True,
    profile: bool = False,
) -> SweepOutcome:
    """Expand ``sweep``, run uncached specs via ``backend``, persist.

    ``force`` re-runs specs even when the store already holds a
    successful record for their hash.  ``progress`` (if given) receives
    one human-readable line per spec as results land.  ``backend``
    names a registered executor (``serial``/``pool``/``queue``) or is a
    ready :class:`ExecutorBackend` instance; default ``pool``.  An
    explicit ``jobs`` is honoured uncapped (``0`` means "no local
    workers" and only makes sense with the ``queue`` backend, where
    external ``repro worker`` processes supply the labour).
    ``repeats`` (if given) overrides the sweep's own repeat count —
    the ``--repeats N`` CLI path — and must be >= 1.

    ``telemetry`` (default on) makes the scheduler emit schema-validated
    lifecycle events into ``<run-dir>/telemetry/`` — and, because the
    directory's presence is the enable switch, queue workers then emit
    their own (see :mod:`repro.obs.telemetry`).  Telemetry observes
    scheduling only; experiment results are unaffected.  ``profile``
    runs every spec under the simulator profiler and persists the
    per-component attribution on its record (``--profile``).
    """
    if repeats is not None:
        if repeats < 1:
            raise SpecError(f"repeats must be >= 1, got {repeats}")
        sweep.repeats = repeats
    sweep.validate()
    specs = sweep.expand()
    if isinstance(backend, ExecutorBackend):
        executor = backend
    else:
        executor = executor_by_name(backend or "pool")
    store = ResultStore(out_dir)
    prior = store.load_sweep_name()
    if prior is not None and prior != sweep.name:
        raise SpecError(
            f"run directory {store.root} already holds sweep {prior!r}; "
            f"refusing to mix in {sweep.name!r} — use a different --out"
        )
    store.save_sweep(sweep.to_dict())
    outcome = SweepOutcome(
        sweep=sweep.name, out_dir=Path(out_dir), backend=executor.name
    )
    emitter = None
    if telemetry:
        from repro.obs.telemetry import TelemetryWriter

        # Creating the writer creates <run-dir>/telemetry/, which is
        # the switch queue workers (local or external) key off.
        emitter = TelemetryWriter(Path(out_dir), "scheduler")

    # Identical specs (e.g. a duplicated grid value) collapse to one
    # before any accounting, so cached/executed totals agree across
    # repeat invocations of the same sweep.
    unique: Dict[str, ExperimentSpec] = {}
    for spec in specs:
        unique.setdefault(spec.spec_hash, spec)

    cached_hashes = set() if force else store.ok_hashes()
    pending: List[ExperimentSpec] = []
    cached_specs: List[ExperimentSpec] = []
    for spec in unique.values():
        if spec.spec_hash in cached_hashes:
            outcome.cached += 1
            cached_specs.append(spec)
            if progress:
                progress(f"cached  {spec.label} ({spec.spec_hash})")
        else:
            pending.append(spec)

    payloads = [
        {
            "spec_hash": s.spec_hash,
            "experiment": s.experiment,
            "params": dict(s.params),
            "repeat": s.repeat,
            "seed": s.seed,
        }
        for s in pending
    ]
    if profile:
        for payload in payloads:
            payload["profile"] = True
    resolved_jobs = jobs if jobs is not None else default_jobs()
    run_start = time.perf_counter()
    if emitter is not None:
        emitter.emit(
            "run_started",
            sweep=sweep.name,
            total=len(unique),
            cached=outcome.cached,
            backend=executor.name,
            jobs=resolved_jobs,
        )
        for spec in cached_specs:
            emitter.emit("spec_cached", spec_hash=spec.spec_hash)

    def finish() -> SweepOutcome:
        if emitter is not None:
            emitter.emit(
                "run_finished",
                sweep=sweep.name,
                executed=len(outcome.executed),
                failed=len(outcome.failed),
                wall_s=time.perf_counter() - run_start,
            )
        return outcome

    if not payloads:
        return finish()
    labels = {s.spec_hash: s.label for s in pending}
    ctx = ExecutionContext(
        store=store,
        jobs=resolved_jobs,
        sweep=sweep.name,
        git=git_metadata(repo_dir=None),
    )
    # One scheduler per run directory: advisory, heartbeated on every
    # persisted record, stale-taken-over if a prior scheduler crashed.
    with store.writer_lock() as lock:
        # Every backend persists records as they land (not after the
        # run drains), so an interrupted sweep keeps every completed
        # spec in the cache.
        for record in executor.execute(payloads, ctx):
            outcome.executed.append(record)
            lock.refresh()
            if emitter is not None:
                emitter.emit(
                    "record",
                    spec_hash=record.spec_hash,
                    status=record.status,
                    wall_s=record.wall_time_s,
                    label=labels.get(record.spec_hash, record.spec_hash),
                )
            if progress:
                state = "ok     " if record.ok else "FAILED "
                label = labels.get(record.spec_hash, record.spec_hash)
                progress(f"{state} {label} ({record.wall_time_s:.2f}s)")
    return finish()
