"""Sweep scheduler: expand, cache-check, dispatch to an executor backend.

:func:`run_sweep` is a thin scheduler over
:mod:`repro.experiments.exec`: it expands the
:class:`~repro.experiments.spec.SweepSpec`, collapses duplicates,
consults the run directory's sharded :class:`ResultStore` for specs
whose content hash already has a successful record (the cache), takes
the run-level writer lock, and hands the pending payloads to the chosen
:class:`~repro.experiments.exec.backends.ExecutorBackend` — ``serial``,
``pool`` (the historical fork pool, the default), or ``queue`` (the
durable work queue that ``repro worker`` processes can join from any
host sharing the filesystem).  Every backend persists records as they
land, so an interrupted sweep resumes without re-executing completed
specs, and failures stay isolated per spec.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.exec.backends import (
    ExecutionContext,
    ExecutorBackend,
    executor_by_name,
)
from repro.experiments.spec import ExperimentSpec, SpecError, SweepSpec
from repro.experiments.store import ResultStore, StoredResult, git_metadata


@dataclass
class SweepOutcome:
    """Summary of one :func:`run_sweep` invocation."""

    sweep: str
    out_dir: Path
    executed: List[StoredResult] = field(default_factory=list)
    cached: int = 0
    backend: str = "pool"

    @property
    def failed(self) -> List[StoredResult]:
        return [r for r in self.executed if not r.ok]

    @property
    def total(self) -> int:
        return len(self.executed) + self.cached

    @property
    def ok(self) -> bool:
        return not self.failed


def _execute_spec(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: run one spec, never raise.

    Top-level (picklable) so it works under both fork and spawn start
    methods.  Returns a partial :class:`StoredResult` dict; the caller
    (backend or queue worker) adds timestamps and git metadata before
    persisting.

    The global ``random`` module is seeded from the spec for any
    experiment that consumes ambient randomness; note the current
    registry entries are internally deterministic (instance-seeded
    RNGs), so repeats of the same params reproduce identical series.
    """
    from repro.harness.experiments import run_experiment, shared_rpc_comparison

    rng_state = random.getstate()
    random.seed(payload["seed"])
    # Persisted wall times must not depend on which specs shared a
    # worker process: drop cross-spec memoization before timing.
    shared_rpc_comparison.cache_clear()
    start = time.perf_counter()
    record = {
        "spec_hash": payload["spec_hash"],
        "experiment": payload["experiment"],
        "params": payload["params"],
        "repeat": payload["repeat"],
        "seed": payload["seed"],
    }
    try:
        result = run_experiment(payload["experiment"], **payload["params"])
    except Exception:
        record.update(
            status="error",
            error=traceback.format_exc(limit=8),
            series={},
            text="",
        )
    else:
        record.update(
            status="ok", error=None, series=result.series, text=result.text
        )
    finally:
        # The serial path runs in the caller's process: leave its
        # global RNG stream the way we found it.
        random.setstate(rng_state)
    record["wall_time_s"] = time.perf_counter() - start
    return record


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given.

    ``REPRO_JOBS`` overrides (uncapped, like an explicit ``--jobs``);
    otherwise the CPU count, soft-capped at 8 so a sweep on a large
    shared box does not monopolise it by default.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return max(1, min(8, os.cpu_count() or 1))


def _pool_context():
    """Prefer fork (shares the warmed interpreter); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_sweep(
    sweep: SweepSpec,
    out_dir: Union[str, Path],
    jobs: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    backend: Union[str, ExecutorBackend, None] = None,
    repeats: Optional[int] = None,
) -> SweepOutcome:
    """Expand ``sweep``, run uncached specs via ``backend``, persist.

    ``force`` re-runs specs even when the store already holds a
    successful record for their hash.  ``progress`` (if given) receives
    one human-readable line per spec as results land.  ``backend``
    names a registered executor (``serial``/``pool``/``queue``) or is a
    ready :class:`ExecutorBackend` instance; default ``pool``.  An
    explicit ``jobs`` is honoured uncapped (``0`` means "no local
    workers" and only makes sense with the ``queue`` backend, where
    external ``repro worker`` processes supply the labour).
    ``repeats`` (if given) overrides the sweep's own repeat count —
    the ``--repeats N`` CLI path — and must be >= 1.
    """
    if repeats is not None:
        if repeats < 1:
            raise SpecError(f"repeats must be >= 1, got {repeats}")
        sweep.repeats = repeats
    sweep.validate()
    specs = sweep.expand()
    if isinstance(backend, ExecutorBackend):
        executor = backend
    else:
        executor = executor_by_name(backend or "pool")
    store = ResultStore(out_dir)
    prior = store.load_sweep_name()
    if prior is not None and prior != sweep.name:
        raise SpecError(
            f"run directory {store.root} already holds sweep {prior!r}; "
            f"refusing to mix in {sweep.name!r} — use a different --out"
        )
    store.save_sweep(sweep.to_dict())
    outcome = SweepOutcome(
        sweep=sweep.name, out_dir=Path(out_dir), backend=executor.name
    )

    # Identical specs (e.g. a duplicated grid value) collapse to one
    # before any accounting, so cached/executed totals agree across
    # repeat invocations of the same sweep.
    unique: Dict[str, ExperimentSpec] = {}
    for spec in specs:
        unique.setdefault(spec.spec_hash, spec)

    cached_hashes = set() if force else store.ok_hashes()
    pending: List[ExperimentSpec] = []
    for spec in unique.values():
        if spec.spec_hash in cached_hashes:
            outcome.cached += 1
            if progress:
                progress(f"cached  {spec.label} ({spec.spec_hash})")
        else:
            pending.append(spec)

    payloads = [
        {
            "spec_hash": s.spec_hash,
            "experiment": s.experiment,
            "params": dict(s.params),
            "repeat": s.repeat,
            "seed": s.seed,
        }
        for s in pending
    ]
    if not payloads:
        return outcome
    labels = {s.spec_hash: s.label for s in pending}
    ctx = ExecutionContext(
        store=store,
        jobs=jobs if jobs is not None else default_jobs(),
        sweep=sweep.name,
        git=git_metadata(repo_dir=None),
    )
    # One scheduler per run directory: advisory, heartbeated on every
    # persisted record, stale-taken-over if a prior scheduler crashed.
    with store.writer_lock() as lock:
        # Every backend persists records as they land (not after the
        # run drains), so an interrupted sweep keeps every completed
        # spec in the cache.
        for record in executor.execute(payloads, ctx):
            outcome.executed.append(record)
            lock.refresh()
            if progress:
                state = "ok     " if record.ok else "FAILED "
                label = labels.get(record.spec_hash, record.spec_hash)
                progress(f"{state} {label} ({record.wall_time_s:.2f}s)")
    return outcome
