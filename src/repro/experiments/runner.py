"""Parallel sweep executor with caching and failure isolation.

Expanded :class:`~repro.experiments.spec.ExperimentSpec`s fan out
across a :mod:`multiprocessing` pool.  Each worker seeds ``random``
from the spec, runs the experiment through the registry, and returns a
record dict — exceptions are caught per-spec, so one failed spec marks
itself ``"error"`` without killing the sweep.  Before dispatch the
runner consults the run directory's :class:`ResultStore`: specs whose
content hash already has a successful record are skipped (the cache),
making re-runs of a partially-failed or extended sweep incremental.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.spec import ExperimentSpec, SpecError, SweepSpec
from repro.experiments.store import ResultStore, StoredResult, git_metadata


@dataclass
class SweepOutcome:
    """Summary of one :func:`run_sweep` invocation."""

    sweep: str
    out_dir: Path
    executed: List[StoredResult] = field(default_factory=list)
    cached: int = 0

    @property
    def failed(self) -> List[StoredResult]:
        return [r for r in self.executed if not r.ok]

    @property
    def total(self) -> int:
        return len(self.executed) + self.cached

    @property
    def ok(self) -> bool:
        return not self.failed


def _execute_spec(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: run one spec, never raise.

    Top-level (picklable) so it works under both fork and spawn start
    methods.  Returns a partial :class:`StoredResult` dict; the parent
    adds timestamps and git metadata before persisting.

    The global ``random`` module is seeded from the spec for any
    experiment that consumes ambient randomness; note the current
    registry entries are internally deterministic (instance-seeded
    RNGs), so repeats of the same params reproduce identical series.
    """
    from repro.harness.experiments import run_experiment, shared_rpc_comparison

    rng_state = random.getstate()
    random.seed(payload["seed"])
    # Persisted wall times must not depend on which specs shared a
    # worker process: drop cross-spec memoization before timing.
    shared_rpc_comparison.cache_clear()
    start = time.perf_counter()
    record = {
        "spec_hash": payload["spec_hash"],
        "experiment": payload["experiment"],
        "params": payload["params"],
        "repeat": payload["repeat"],
        "seed": payload["seed"],
    }
    try:
        result = run_experiment(payload["experiment"], **payload["params"])
    except Exception:
        record.update(
            status="error",
            error=traceback.format_exc(limit=8),
            series={},
            text="",
        )
    else:
        record.update(
            status="ok", error=None, series=result.series, text=result.text
        )
    finally:
        # The serial (jobs=1) path runs in the caller's process: leave
        # its global RNG stream the way we found it.
        random.setstate(rng_state)
    record["wall_time_s"] = time.perf_counter() - start
    return record


def default_jobs() -> int:
    return max(1, min(8, os.cpu_count() or 1))


def _pool_context():
    """Prefer fork (shares the warmed interpreter); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_sweep(
    sweep: SweepSpec,
    out_dir: Union[str, Path],
    jobs: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """Expand ``sweep``, run uncached specs in parallel, persist results.

    ``force`` re-runs specs even when the store already holds a
    successful record for their hash.  ``progress`` (if given) receives
    one human-readable line per spec as results land.
    """
    sweep.validate()
    specs = sweep.expand()
    store = ResultStore(out_dir)
    prior = store.load_sweep_name()
    if prior is not None and prior != sweep.name:
        raise SpecError(
            f"run directory {store.root} already holds sweep {prior!r}; "
            f"refusing to mix in {sweep.name!r} — use a different --out"
        )
    store.save_sweep(sweep.to_dict())
    outcome = SweepOutcome(sweep=sweep.name, out_dir=Path(out_dir))

    # Identical specs (e.g. a duplicated grid value) collapse to one
    # before any accounting, so cached/executed totals agree across
    # repeat invocations of the same sweep.
    unique: Dict[str, ExperimentSpec] = {}
    for spec in specs:
        unique.setdefault(spec.spec_hash, spec)

    cached_hashes = set() if force else store.ok_hashes()
    pending: List[ExperimentSpec] = []
    for spec in unique.values():
        if spec.spec_hash in cached_hashes:
            outcome.cached += 1
            if progress:
                progress(f"cached  {spec.label} ({spec.spec_hash})")
        else:
            pending.append(spec)

    payloads = [
        {
            "spec_hash": s.spec_hash,
            "experiment": s.experiment,
            "params": dict(s.params),
            "repeat": s.repeat,
            "seed": s.seed,
        }
        for s in pending
    ]
    meta = git_metadata(repo_dir=None)
    labels = {s.spec_hash: s.label for s in pending}

    def persist(raw: Dict[str, object]) -> None:
        record = StoredResult(timestamp=time.time(), sweep=sweep.name, **meta, **raw)
        store.append(record)
        outcome.executed.append(record)
        if progress:
            state = "ok     " if record.ok else "FAILED "
            progress(
                f"{state} {labels[record.spec_hash]} "
                f"({record.wall_time_s:.2f}s)"
            )

    # Results are persisted as they land (not after the pool drains), so
    # an interrupted sweep keeps every completed spec in the cache.
    jobs = jobs or default_jobs()
    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            persist(_execute_spec(payload))
    else:
        pool = _pool_context().Pool(processes=min(jobs, len(payloads)))
        try:
            # Unordered: a slow head-of-line spec must not delay
            # persisting specs that already finished behind it.
            for raw in pool.imap_unordered(_execute_spec, payloads):
                persist(raw)
        except BaseException:
            # Abort outstanding specs instead of draining a long sweep
            # before the real error (or Ctrl-C) can surface.
            pool.terminate()
            raise
        else:
            pool.close()
        finally:
            pool.join()
    return outcome
