"""Multi-device fan-out experiments built on the topology layer.

These scenarios exist because of :mod:`repro.system`: N type-1 devices
(each with its own LSU) share one host LLC home agent, so their
concurrent load streams contend on the home-agent initiation interval
and the memory controller — the first scaling axis past the paper's
single-device calibration.  ``fanout2``/``fanout4`` are registered in
:data:`repro.harness.experiments.EXPERIMENTS`, so ``repro run`` and
``repro sweep`` cover them like any paper figure.

``topo-scale`` generalizes the same measurement to *any* LSU-bearing
topology named by a JSON-representable reference — a registered name
(``"fanout-8"``, including layouts loaded from ``examples/topologies/``
JSON files) or a parametric family (``"fanout(6)"``).  That makes the
topology itself a sweep axis: the ``topology-scale`` preset grids
``fanout(1)`` through ``fanout(8)`` and every point hashes/caches
independently in the result store.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.config import system_by_name
from repro.harness.experiments import ExperimentResult, register_experiment
from repro.harness.tables import render_series
from repro.mem.address import CACHELINE
from repro.system import (
    BuiltSystem,
    SystemBuilder,
    Topology,
    fanout_topology,
    resolve_topology,
)


def _latency_chain(lsu, addrs: List[int], out: List[int]) -> None:
    """Serialized loads (LSU issue/complete timing) recording latencies.

    Unlike :meth:`LoadStoreUnit.run_latency` this does not drain the
    simulator, so several chains can run concurrently on one system.
    """
    profile = lsu.profile
    issue_ps = profile.cycles_ps(profile.lsu_issue_cycles)
    complete_ps = profile.cycles_ps(profile.lsu_complete_cycles)
    state = {"index": 0, "issued_ps": 0}

    def issue_next() -> None:
        if state["index"] >= len(addrs):
            return
        addr = addrs[state["index"]]
        state["index"] += 1
        state["issued_ps"] = lsu.sim.now

        def done(_result) -> None:
            lsu.schedule(complete_ps, finish)

        def finish() -> None:
            out.append(lsu.sim.now - state["issued_ps"])
            issue_next()

        lsu.schedule(issue_ps, lsu.dcoh.read, addr, done)

    issue_next()


def _bandwidth_stream(lsu, addrs: List[int]) -> Dict[str, int]:
    """Pipelined loads under the profile's outstanding window; the
    returned state carries first-issue/last-done timestamps and bytes."""
    profile = lsu.profile
    issue_ii = profile.clock_period_ps
    state = {
        "index": 0,
        "inflight": 0,
        "first_issue_ps": -1,
        "last_done_ps": 0,
        "bytes": 0,
    }

    def try_issue() -> None:
        if state["index"] >= len(addrs):
            return
        if state["inflight"] >= profile.max_outstanding:
            return  # a completion re-triggers issue
        addr = addrs[state["index"]]
        state["index"] += 1
        state["inflight"] += 1
        if state["first_issue_ps"] < 0:
            state["first_issue_ps"] = lsu.sim.now

        def done(_result) -> None:
            state["inflight"] -= 1
            state["last_done_ps"] = lsu.sim.now
            state["bytes"] += CACHELINE
            try_issue()

        lsu.dcoh.read(addr, done)
        lsu.schedule(issue_ii, try_issue)

    try_issue()
    return state


def _device_window(device_index: int, base: int = 0x200000) -> int:
    """Base of a private per-device address window (no line sharing)."""
    return base + device_index * 0x100_0000


def _scaling_measurement(
    topology: Topology,
    profile: str,
    count: int,
    trials: int,
    bw_count: int,
    name: str,
    description: str,
    title: str,
) -> ExperimentResult:
    """Concurrent latency/bandwidth across every LSU of ``topology``.

    Two fresh builds of the same topology (one per phase), so the
    phases never share simulator state; windows are carved per LSU in
    declaration order, so no two streams share a cache line.
    """
    lsu_names = [spec.name for spec in topology.by_kind("lsu")]
    if not lsu_names:
        raise ValueError(
            f"topology {topology.name!r} declares no 'lsu' nodes; the "
            "scaling measurement needs at least one load/store unit to drive"
        )
    config = system_by_name(profile)

    # --- latency phase: every device chases its own serialized chain.
    system: BuiltSystem = SystemBuilder(config).build(topology)
    per_device_lat: Dict[int, List[int]] = {}
    for i, lsu_name in enumerate(lsu_names):
        per_device_lat[i] = []
        lsu = system.node(lsu_name)
        _latency_chain(
            lsu,
            lsu.sequential_lines(_device_window(i), count * trials),
            per_device_lat[i],
        )
    system.sim.run()

    # --- bandwidth phase: fresh system, pipelined streams in parallel.
    system = SystemBuilder(config).build(topology)
    streams = {
        i: _bandwidth_stream(
            system.node(lsu_name),
            system.node(lsu_name).sequential_lines(_device_window(i), bw_count),
        )
        for i, lsu_name in enumerate(lsu_names)
    }
    system.sim.run()

    lat_ns: Dict[str, float] = {
        f"dev{i}": statistics.median(samples) / 1_000
        for i, samples in per_device_lat.items()
    }
    lat_ns["all"] = statistics.median(
        [s for samples in per_device_lat.values() for s in samples]
    ) / 1_000

    bw_gbps: Dict[str, float] = {}
    for i, state in streams.items():
        elapsed = state["last_done_ps"] - state["first_issue_ps"]
        bw_gbps[f"dev{i}"] = state["bytes"] / elapsed * 1_000 if elapsed else 0.0
    total_bytes = sum(s["bytes"] for s in streams.values())
    span = max(s["last_done_ps"] for s in streams.values()) - min(
        s["first_issue_ps"] for s in streams.values()
    )
    bw_gbps["all"] = total_bytes / span * 1_000 if span else 0.0

    series = {"mem_lat_median_ns": lat_ns, "bandwidth_gbps": bw_gbps}
    text = render_series("device", series, title=title, fmt="{:.2f}")
    return ExperimentResult(name, description, series, text)


def fanout_scaling(
    devices: int = 2,
    profile: str = "fpga",
    count: int = 16,
    trials: int = 4,
    bw_count: int = 512,
) -> ExperimentResult:
    """N-device fan-out: concurrent mem-hit latency and aggregate bandwidth."""
    return _scaling_measurement(
        fanout_topology(devices),
        profile,
        count,
        trials,
        bw_count,
        name=f"fanout{devices}",
        description=fanout_scaling.__doc__,
        title=(
            f"Fan-out x{devices} ({profile}): concurrent mem-hit latency "
            "and bandwidth"
        ),
    )


def topology_scaling(
    topology: str = "fanout(2)",
    profile: str = "fpga",
    count: int = 16,
    trials: int = 4,
    bw_count: int = 512,
) -> ExperimentResult:
    """Concurrent mem-hit latency/bandwidth on any LSU-bearing topology."""
    resolved = resolve_topology(topology)
    return _scaling_measurement(
        resolved,
        profile,
        count,
        trials,
        bw_count,
        name="topo-scale",
        description=topology_scaling.__doc__,
        title=(
            f"Topology {resolved.name} ({profile}): concurrent mem-hit "
            "latency and bandwidth"
        ),
    )


def fanout2_scaling(
    profile: str = "fpga", count: int = 16, trials: int = 4, bw_count: int = 512
) -> ExperimentResult:
    """2-device fan-out: shared-LLC contention latency/bandwidth."""
    return fanout_scaling(2, profile=profile, count=count, trials=trials,
                          bw_count=bw_count)


def fanout4_scaling(
    profile: str = "fpga", count: int = 16, trials: int = 4, bw_count: int = 512
) -> ExperimentResult:
    """4-device fan-out: shared-LLC contention latency/bandwidth."""
    return fanout_scaling(4, profile=profile, count=count, trials=trials,
                          bw_count=bw_count)


register_experiment("fanout2", fanout2_scaling)
register_experiment("fanout4", fanout4_scaling)
register_experiment("topo-scale", topology_scaling)
