"""Fault-tolerance experiments built on the fault subsystem.

This scenario exists because of :mod:`repro.faults`: a failure
timeline is a *parameter* of a run, exactly like its shape
(``topology``) and its traffic (``workload``) — a sweep grid holds
``fault`` references alongside the other two axes, and the spec layer
validates them up-front against the plan registry.

``fault-tolerance`` drives one workload through one topology under one
fault plan in degraded mode (bounded retry-with-backoff instead of
fail-loud), reporting the usual latency/bandwidth series *plus* the
availability and recovery series the controller collects: completed vs
dropped operations, retries, corrupted deliveries, time spent inside
fault windows, and post-recovery settling time.  With
``fault="none"`` the degraded machinery is engaged but no event ever
fires, so the core series must stay bit-identical to a plain
``workload-mix`` run — the regression contract CI's fault-smoke job
asserts.
"""

from __future__ import annotations

from repro.config import system_by_name
from repro.harness.experiments import ExperimentResult, register_experiment


def fault_tolerance(
    fault: str = "none",
    workload: str = "mixed",
    topology: str = "fanout-2",
    profile: str = "fpga",
    seed: int = 1234,
    streams: int = 0,
    mode: str = "degraded",
    retries: int = 3,
    backoff_ps: int = 500_000,
    sim_parallel: object = 0,
) -> ExperimentResult:
    """One workload under a fault plan: availability + recovery metrics."""
    from repro.workloads import WorkloadDriver

    driver = WorkloadDriver(system_by_name(profile))
    measurement = driver.run(
        workload,
        topology=topology,
        seed=seed,
        streams=streams or None,
        fault=fault,
        fault_mode=mode,
        fault_retries=retries,
        fault_backoff_ps=backoff_ps,
        sim_parallel=sim_parallel,
    )
    series = dict(measurement.series)
    series["counts"] = {
        "ops": float(measurement.ops),
        "reads": float(measurement.reads),
        "writes": float(measurement.writes),
    }
    return ExperimentResult(
        "fault-tolerance", fault_tolerance.__doc__, series,
        measurement.render(),
    )


register_experiment("fault-tolerance", fault_tolerance)
