"""Experiment harness: one entry point per paper table/figure."""

from repro.harness.tables import render_series, render_table
from repro.harness.comparison import SIMULATOR_COMPARISON, render_table2
from repro.harness.experiments import (
    EXPERIMENTS,
    fig4_programming_models,
    run_experiment,
    fig12_numa_latency,
    fig13_load_latency,
    fig14_dma_latency,
    fig15_load_bandwidth,
    fig16_dma_bandwidth,
    fig17_rao_speedup,
    fig18a_deserialization,
    fig18b_serialization,
    headline_metrics,
    simulation_error,
    table1_configurations,
)

__all__ = [
    "render_series",
    "render_table",
    "SIMULATOR_COMPARISON",
    "render_table2",
    "EXPERIMENTS",
    "fig4_programming_models",
    "run_experiment",
    "fig12_numa_latency",
    "fig13_load_latency",
    "fig14_dma_latency",
    "fig15_load_bandwidth",
    "fig16_dma_bandwidth",
    "fig17_rao_speedup",
    "fig18a_deserialization",
    "fig18b_serialization",
    "headline_metrics",
    "simulation_error",
    "table1_configurations",
]
