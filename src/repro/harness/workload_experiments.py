"""Workload-driven experiments built on the workload subsystem.

These scenarios exist because of :mod:`repro.workloads`: any registered
traffic generator (or phase composition, or recorded trace) can drive
any builder-constructed topology, so an access pattern is an experiment
*parameter* — a sweep grid holds ``workload`` references exactly like
it holds ``topology`` references.

``workload-mix`` measures one workload on an LSU-bearing layout
(latency medians + per-stream bandwidth under contention);
``supernode-workload`` drives coherent traffic — not just leases —
through the per-host systems of a supernode topology, reporting fabric
traffic and local-agent filter rates.  Both register in
:data:`repro.harness.experiments.EXPERIMENTS`, so ``repro run``,
``repro sweep`` and the result store cover them like any paper figure
(see the ``workload-mix`` sweep preset).
"""

from __future__ import annotations

from repro.config import system_by_name
from repro.harness.experiments import ExperimentResult, register_experiment


def workload_mix(
    workload: str = "mixed",
    topology: str = "fanout-2",
    profile: str = "fpga",
    seed: int = 1234,
    streams: int = 0,
) -> ExperimentResult:
    """One workload through an LSU-bearing topology: latency + bandwidth."""
    from repro.workloads import WorkloadDriver

    driver = WorkloadDriver(system_by_name(profile))
    measurement = driver.run(
        workload,
        topology=topology,
        seed=seed,
        streams=streams or None,
    )
    series = dict(measurement.series)
    series["counts"] = {
        "ops": float(measurement.ops),
        "reads": float(measurement.reads),
        "writes": float(measurement.writes),
    }
    return ExperimentResult(
        "workload-mix", workload_mix.__doc__, series, measurement.render()
    )


def supernode_workload(
    workload: str = "producer-consumer",
    hosts: int = 2,
    profile: str = "asic",
    seed: int = 1234,
    streams: int = 0,
    sim_parallel: object = 0,
) -> ExperimentResult:
    """Coherent workload traffic through per-host supernode systems.

    ``sim_parallel`` (worker count or ``"auto"``; ``0`` = the legacy
    synchronous path) switches to the windowed conservative model of
    :mod:`repro.sim.parallel` — bit-identical across worker counts.
    """
    from repro.workloads import WorkloadDriver

    driver = WorkloadDriver(system_by_name(profile))
    measurement = driver.run(
        workload,
        topology=f"supernode({hosts})",
        seed=seed,
        streams=streams or None,
        sim_parallel=sim_parallel,
    )
    series = dict(measurement.series)
    series["counts"] = {
        "ops": float(measurement.ops),
        "reads": float(measurement.reads),
        "writes": float(measurement.writes),
    }
    return ExperimentResult(
        "supernode-workload", supernode_workload.__doc__, series,
        measurement.render(),
    )


register_experiment("workload-mix", workload_mix)
register_experiment("supernode-workload", supernode_workload)
