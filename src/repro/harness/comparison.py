"""Table II: SimCXL versus prior CXL simulators/emulators."""

from __future__ import annotations

from typing import Dict, List

from repro.harness.tables import render_table

TABLE2_COLUMNS = (
    "Cohet Support",
    "CXL.cache Support",
    "CXL.mem&io Support",
    "CXL XPU Models",
    "Full System",
    "Hardware Calibration",
    "Configurability",
    "Sim. Error",
    "Sim. Speed",
)

SIMULATOR_COMPARISON: Dict[str, Dict[str, str]] = {
    "CXLMemSim": {
        "Cohet Support": "No",
        "CXL.cache Support": "No",
        "CXL.mem&io Support": "No",
        "CXL XPU Models": "No",
        "Full System": "No",
        "Hardware Calibration": "No",
        "Configurability": "Medium",
        "Sim. Error": "High",
        "Sim. Speed": "Medium",
    },
    "CXL-DMSim": {
        "Cohet Support": "No",
        "CXL.cache Support": "No",
        "CXL.mem&io Support": "Yes",
        "CXL XPU Models": "No",
        "Full System": "Yes",
        "Hardware Calibration": "Yes",
        "Configurability": "High",
        "Sim. Error": "Low",
        "Sim. Speed": "Low",
    },
    "Mess+gem5": {
        "Cohet Support": "No",
        "CXL.cache Support": "No",
        "CXL.mem&io Support": "No",
        "CXL XPU Models": "No",
        "Full System": "No",
        "Hardware Calibration": "No",
        "Configurability": "High",
        "Sim. Error": "Medium",
        "Sim. Speed": "Low",
    },
    "QEMU": {
        "Cohet Support": "No",
        "CXL.cache Support": "No",
        "CXL.mem&io Support": "Yes",
        "CXL XPU Models": "No",
        "Full System": "Yes",
        "Hardware Calibration": "No",
        "Configurability": "High",
        "Sim. Error": "High",
        "Sim. Speed": "High",
    },
    "Remote NUMA": {
        "Cohet Support": "No",
        "CXL.cache Support": "No",
        "CXL.mem&io Support": "No",
        "CXL XPU Models": "No",
        "Full System": "No",
        "Hardware Calibration": "N/A",
        "Configurability": "Low",
        "Sim. Error": "High",
        "Sim. Speed": "High",
    },
    "SimCXL": {
        "Cohet Support": "Yes",
        "CXL.cache Support": "Yes",
        "CXL.mem&io Support": "Yes",
        "CXL XPU Models": "Yes",
        "Full System": "Yes",
        "Hardware Calibration": "Yes",
        "Configurability": "High",
        "Sim. Error": "Low",
        "Sim. Speed": "Low",
    },
}


def capability_flags() -> Dict[str, bool]:
    """What this reproduction actually implements (self-check for the
    SimCXL row: each Yes is backed by a module)."""
    return {
        "Cohet Support": True,        # repro.core
        "CXL.cache Support": True,    # repro.cxl.dcoh / repro.cache.llc
        "CXL.mem&io Support": True,   # repro.cxl.mem / repro.cxl.io
        "CXL XPU Models": True,       # repro.devices.xpu / repro.nic
        "Full System": True,          # repro.kernel + repro.core
        "Hardware Calibration": True, # repro.calibration
    }


def render_table2() -> str:
    rows: List[List[str]] = []
    for name, caps in SIMULATOR_COMPARISON.items():
        rows.append([name] + [caps[c] for c in TABLE2_COLUMNS])
    return render_table(
        ["Simulator/Emulator"] + list(TABLE2_COLUMNS),
        rows,
        title="Table II: comparison between SimCXL and prior CXL simulators/emulators",
    )
