"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def _column_widths(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> List[int]:
    """Widest stringified cell per column (headers included)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for col, cell in zip(columns, row):
            col.append(str(cell))
    return [max(len(cell) for cell in col) for col in columns]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    widths = _column_widths(headers, rows)
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """GitHub-flavoured markdown table (used by sweep reports)."""
    widths = _column_widths(headers, rows)
    lines = []
    if title:
        lines.append(f"## {title}")
        lines.append("")
    lines.append(
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
    )
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        lines.append(
            "| "
            + " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
            + " |"
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: Mapping[str, Mapping[object, float]],
    title: Optional[str] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render one or more named series sharing an x-axis (figure data)."""
    xs: List[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append(fmt.format(value) if value is not None else "-")
        rows.append(row)
    return render_table(headers, rows, title=title)
