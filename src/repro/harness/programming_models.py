"""Fig. 4: programming-model comparison (explicit copy / UM / Cohet).

The paper contrasts three AXPY implementations: CUDA explicit copy
(16 lines), CUDA unified memory (10 lines), and Cohet (9 lines).  This
module carries the three listings, counts their statements the way the
figure does, and — for the Cohet column — executes the equivalent
program on the simulator to show it is not pseudocode here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

EXPLICIT_COPY_LISTING = """\
float *h_X = malloc(N);
float *h_Y = malloc(N);
cpu_init_data(h_X, h_Y, N);
float *d_X, *d_Y;
cudaMalloc(&d_X, N);
cudaMalloc(&d_Y, N);
cudaMemcpy(d_X, h_X, N, H2D);
cudaMemcpy(d_Y, h_Y, N, H2D);
axpy_kernel<<<...>>>(N, a, d_X, d_Y);
cudaDeviceSynchronize();
cudaMemcpy(h_Y, d_Y, N, D2H);
cpu_use_data(h_Y);
free(h_X);
free(h_Y);
cudaFree(d_X);
cudaFree(d_Y);"""

UNIFIED_MEMORY_LISTING = """\
float *X, *Y;
cudaMallocManaged(&X, N);
cudaMallocManaged(&Y, N);
cpu_init_data(X, Y, N);
axpy_kernel<<<...>>>(N, a, X, Y);
cudaDeviceSynchronize();
cpu_use_data(Y);
cudaFree(X);
cudaFree(Y);
/* implicit copies: page faults */"""

COHET_LISTING = """\
float *X = malloc(N);
float *Y = malloc(N);
init_data(X, Y, N);
clEnqueueNDRangeKernel(queue,
    axpy_kernel, ...);
clFinish(queue);
cpu_use_data(Y);
free(X);
free(Y);"""


@dataclass
class ModelComparison:
    name: str
    listing: str
    explicit_copies: int
    special_alloc_apis: int

    @property
    def lines(self) -> int:
        return len(self.listing.splitlines())


PROGRAMMING_MODELS: List[ModelComparison] = [
    ModelComparison("explicit-copy", EXPLICIT_COPY_LISTING,
                    explicit_copies=3, special_alloc_apis=2),
    ModelComparison("unified-memory", UNIFIED_MEMORY_LISTING,
                    explicit_copies=0, special_alloc_apis=1),
    ModelComparison("cohet", COHET_LISTING,
                    explicit_copies=0, special_alloc_apis=0),
]


def run_cohet_axpy(n: int = 512, alpha: float = 2.0) -> bool:
    """Execute the Cohet listing's semantics on the simulator."""
    import numpy as np

    from repro.config import asic_system
    from repro.core.cohet import CohetSystem
    from repro.core.runtime import Kernel

    system = CohetSystem.build_default(asic_system())
    p = system.process
    x_ptr = p.malloc(n * 4)
    y_ptr = p.malloc(n * 4)
    x = np.linspace(0, 1, n, dtype=np.float32)
    y = np.linspace(1, 2, n, dtype=np.float32)
    p.store_array(x_ptr, x)
    p.store_array(y_ptr, y)

    def axpy(ctx, _i, count, a, xp, yp):
        ctx.store_array(
            yp, a * ctx.load_array(xp, np.float32, count)
            + ctx.load_array(yp, np.float32, count)
        )

    queue = system.queue("xpu0")
    queue.enqueue_task(Kernel("axpy", axpy), n, alpha, x_ptr, y_ptr)
    queue.finish()
    result = p.load_array(y_ptr, np.float32, n)
    p.free(x_ptr)
    p.free(y_ptr)
    return bool(np.allclose(result, alpha * x + y, rtol=1e-6))


def fig4_programming_models():
    """Fig. 4: code complexity of the three heterogeneous models."""
    from repro.harness.experiments import ExperimentResult
    from repro.harness.tables import render_table

    verified = run_cohet_axpy()
    rows = []
    series: Dict[str, Dict[str, float]] = {"lines": {}, "copies": {}, "special_allocs": {}}
    for model in PROGRAMMING_MODELS:
        rows.append(
            [model.name, model.lines, model.explicit_copies, model.special_alloc_apis]
        )
        series["lines"][model.name] = model.lines
        series["copies"][model.name] = model.explicit_copies
        series["special_allocs"][model.name] = model.special_alloc_apis
    rows.append(["(cohet listing executed on SimCXL)", "OK" if verified else "FAIL", "", ""])
    text = render_table(
        ["model", "lines", "explicit copies", "special alloc APIs"],
        rows,
        title="Fig. 4: programming-model comparison (AXPY)",
    )
    return ExperimentResult("fig4", fig4_programming_models.__doc__, series, text)
