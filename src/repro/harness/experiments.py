"""Experiment entry points, one per paper table/figure.

Every function returns an :class:`ExperimentResult` whose ``series``
holds the regenerated numbers and whose ``text`` is the printable
table; benchmarks call these and print ``text`` so each run shows the
same rows/series the paper reports.

Every entry point accepts its knobs as plain keyword arguments with
JSON-representable values (ints, strings, lists), so the
:data:`EXPERIMENTS` registry doubles as the dispatch table for the
sweep orchestrator in :mod:`repro.experiments` — a spec's ``params``
dict is passed straight through :func:`run_experiment`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.calibration import reference
from repro.calibration.metrics import mape
from repro.calibration.microbench import CxlTestbench
from repro.config import (
    simcxl_table1_config,
    system_by_name,
    testbed_table1_config,
)
from repro.harness.comparison import render_table2
from repro.harness.tables import render_series, render_table
from repro.rao.harness import run_rao_comparison
from repro.rpc.harness import run_rpc_comparison

DMA_SWEEP_SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144)


@lru_cache(maxsize=8)
def shared_rpc_comparison(profile: str = "asic", messages: int = 200):
    """One RPC comparison pass shared by fig18a and fig18b.

    Both figures report different columns of the same
    :func:`run_rpc_comparison` sweep, so running it twice doubles
    fig18 runtime for identical numbers.  Memoised per
    ``(profile, messages)``.

    Consequence: in a serial process, whichever fig18 half runs second
    costs microseconds — recorded wall times there reflect marginal
    cost by design.  Call ``shared_rpc_comparison.cache_clear()``
    first when timing a full pass in isolation.
    """
    return run_rpc_comparison(system_by_name(profile), messages=messages)


@dataclass
class ExperimentResult:
    """Output of one regenerated table/figure."""

    name: str
    description: str
    series: Dict[str, Dict]
    text: str

    def __str__(self) -> str:
        return self.text


# ---------------------------------------------------------------------
# Fig. 12
# ---------------------------------------------------------------------
def fig12_numa_latency(trials: int = 31, profile: str = "fpga") -> ExperimentResult:
    """CXL.cache load latency distribution across NUMA nodes 0-7."""
    config = system_by_name(profile)
    medians: Dict[int, float] = {}
    p25: Dict[int, float] = {}
    p75: Dict[int, float] = {}
    for node in range(8):
        bench = CxlTestbench(config, seed=100 + node)
        report = bench.latency_mem_hit(trials=trials, node=node)
        medians[node] = report.median_ns
        p25[node] = report.p25_ns
        p75[node] = report.p75_ns
    series = {
        "median_ns": medians,
        "p25_ns": p25,
        "p75_ns": p75,
    }
    if profile == "fpga":  # the paper's NUMA sweep ran on the FPGA testbed
        series["paper_median_ns"] = dict(reference.NUMA_MEDIAN_NS)
    text = render_series(
        "node",
        {k: v for k, v in series.items()},
        title="Fig. 12: CXL.cache mem-hit load latency per NUMA node (ns)",
        fmt="{:.1f}",
    )
    return ExperimentResult("fig12", fig12_numa_latency.__doc__, series, text)


# ---------------------------------------------------------------------
# Fig. 13
# ---------------------------------------------------------------------
def fig13_load_latency(trials: int = 8) -> ExperimentResult:
    """Median 64B load latency per memory tier vs. DMA read at 64B."""
    series: Dict[str, Dict[str, float]] = {}
    for profile in ("fpga", "asic"):
        config = system_by_name(profile)
        measured = {
            "hmc_hit": CxlTestbench(config).latency_hmc_hit(trials=trials).median_ns,
            "llc_hit": CxlTestbench(config).latency_llc_hit(trials=trials).median_ns,
            "mem_hit": CxlTestbench(config).latency_mem_hit(trials=trials).median_ns,
            "dma_64b": CxlTestbench(config).dma_latency(64, repeats=20).median_ns,
        }
        series[config.device.name] = measured
    series["paper:CXL-FPGA@400MHz"] = dict(
        reference.LOAD_LATENCY_NS["CXL-FPGA@400MHz"],
        dma_64b=reference.DMA_LATENCY_64B_NS["PCIe-FPGA@400MHz"],
    )
    series["paper:CXL-ASIC@1.5GHz"] = dict(
        reference.LOAD_LATENCY_NS["CXL-ASIC@1.5GHz"],
        dma_64b=reference.DMA_LATENCY_64B_NS["PCIe-ASIC@1.5GHz"],
    )
    text = render_series(
        "tier",
        series,
        title="Fig. 13: median 64B load latency (ns)",
        fmt="{:.1f}",
    )
    return ExperimentResult("fig13", fig13_load_latency.__doc__, series, text)


# ---------------------------------------------------------------------
# Fig. 14
# ---------------------------------------------------------------------
def fig14_dma_latency(sizes: Tuple[int, ...] = DMA_SWEEP_SIZES) -> ExperimentResult:
    """Median H2D DMA read latency vs. message granularity."""
    series: Dict[str, Dict[int, float]] = {}
    for profile in ("fpga", "asic"):
        config = system_by_name(profile)
        bench = CxlTestbench(config)
        series[config.dma.name] = {
            size: bench.dma.measure_latency(size, repeats=9).median_us
            for size in sizes
        }
    series["paper:PCIe-FPGA@400MHz"] = {
        size: ns / 1_000
        for size, ns in reference.DMA_LATENCY_NS.items()
        if size in sizes
    }
    text = render_series(
        "size_bytes",
        series,
        title="Fig. 14: median H2D DMA read latency (us)",
        fmt="{:.2f}",
    )
    return ExperimentResult("fig14", fig14_dma_latency.__doc__, series, text)


# ---------------------------------------------------------------------
# Fig. 15
# ---------------------------------------------------------------------
def fig15_load_bandwidth() -> ExperimentResult:
    """Average 64B load bandwidth per tier vs. DMA at 64B."""
    series: Dict[str, Dict[str, float]] = {}
    for profile in ("fpga", "asic"):
        config = system_by_name(profile)
        series[config.device.name] = {
            "hmc_hit": CxlTestbench(config).bandwidth_hmc_hit().bandwidth_gbps,
            "llc_hit": CxlTestbench(config).bandwidth_llc_hit().bandwidth_gbps,
            "mem_hit": CxlTestbench(config).bandwidth_mem_hit().bandwidth_gbps,
            "dma_64b": CxlTestbench(config).dma_bandwidth(64).bandwidth_gbps,
        }
    series["paper:CXL-FPGA@400MHz"] = dict(
        reference.LOAD_BANDWIDTH_GBPS["CXL-FPGA@400MHz"],
        dma_64b=reference.DMA_BANDWIDTH_64B_GBPS["PCIe-FPGA@400MHz"],
    )
    series["paper:CXL-ASIC@1.5GHz"] = dict(
        reference.LOAD_BANDWIDTH_GBPS["CXL-ASIC@1.5GHz"],
        dma_64b=reference.DMA_BANDWIDTH_64B_GBPS["PCIe-ASIC@1.5GHz"],
    )
    text = render_series(
        "tier",
        series,
        title="Fig. 15: average 64B load bandwidth (GB/s)",
    )
    return ExperimentResult("fig15", fig15_load_bandwidth.__doc__, series, text)


# ---------------------------------------------------------------------
# Fig. 16
# ---------------------------------------------------------------------
def fig16_dma_bandwidth(sizes: Tuple[int, ...] = DMA_SWEEP_SIZES) -> ExperimentResult:
    """Average H2D DMA read bandwidth vs. message granularity."""
    series: Dict[str, Dict[int, float]] = {}
    for profile in ("fpga", "asic"):
        config = system_by_name(profile)
        bench = CxlTestbench(config)
        series[config.dma.name] = {
            size: bench.dma.measure_bandwidth(size, descriptors=512).bandwidth_gbps
            for size in sizes
        }
    series["paper:PCIe-FPGA@400MHz"] = {
        size: gbps
        for size, gbps in reference.DMA_BANDWIDTH_GBPS.items()
        if size in sizes
    }
    text = render_series(
        "size_bytes",
        series,
        title="Fig. 16: average H2D DMA read bandwidth (GB/s)",
    )
    return ExperimentResult("fig16", fig16_dma_bandwidth.__doc__, series, text)


# ---------------------------------------------------------------------
# Fig. 17
# ---------------------------------------------------------------------
def fig17_rao_speedup(ops: int = 2048, profile: str = "asic") -> ExperimentResult:
    """CXL-RAO vs. PCIe-RAO throughput speedup on CircusTent."""
    comparisons = run_rao_comparison(system_by_name(profile), ops=ops)
    series = {
        "speedup": {name: c.speedup for name, c in comparisons.items()},
        "cxl_hit_rate": {name: c.cxl_hit_rate for name, c in comparisons.items()},
        "pcie_mops": {name: c.pcie_mops for name, c in comparisons.items()},
        "cxl_mops": {name: c.cxl_mops for name, c in comparisons.items()},
    }
    if profile == "asic":  # paper reports RAO speedups on the ASIC projection
        series["paper_speedup"] = dict(reference.RAO_SPEEDUP)
    text = render_series(
        "pattern",
        series,
        title="Fig. 17: CXL-based RAO vs. PCIe-based RAO throughput speedup",
    )
    return ExperimentResult("fig17", fig17_rao_speedup.__doc__, series, text)


# ---------------------------------------------------------------------
# Fig. 18
# ---------------------------------------------------------------------
def fig18a_deserialization(messages: int = 200, profile: str = "asic") -> ExperimentResult:
    """RPC deserialization time: RpcNIC vs. CXL-NIC (HyperProtoBench)."""
    comparisons = shared_rpc_comparison(profile, messages)
    series = {
        "rpcnic_us": {n: c.deser_rpcnic_us for n, c in comparisons.items()},
        "cxl_nic_us": {n: c.deser_cxl_us for n, c in comparisons.items()},
        "speedup": {n: c.deser_speedup for n, c in comparisons.items()},
    }
    if profile == "asic":  # paper's fig18 numbers are from the ASIC config
        series["paper_speedup"] = dict(reference.RPC_DESER_SPEEDUP)
    text = render_series(
        "bench",
        series,
        title="Fig. 18a: deserialization time and speedup",
    )
    return ExperimentResult("fig18a", fig18a_deserialization.__doc__, series, text)


def fig18b_serialization(messages: int = 200, profile: str = "asic") -> ExperimentResult:
    """RPC serialization time: RpcNIC vs. the three CXL-NIC paths."""
    comparisons = shared_rpc_comparison(profile, messages)
    series = {
        "rpcnic_us": {n: c.ser_rpcnic_us for n, c in comparisons.items()},
        "cxl_mem_us": {n: c.ser_cxl_mem_us for n, c in comparisons.items()},
        "cxl_cache_us": {n: c.ser_cxl_cache_us for n, c in comparisons.items()},
        "cxl_cache_pf_us": {n: c.ser_cxl_cache_pf_us for n, c in comparisons.items()},
        "speedup_mem": {n: c.ser_speedup_mem for n, c in comparisons.items()},
        "speedup_cache_pf": {n: c.ser_speedup_cache_pf for n, c in comparisons.items()},
        "prefetch_gain": {n: c.prefetch_gain for n, c in comparisons.items()},
    }
    if profile == "asic":  # paper's fig18 numbers are from the ASIC config
        series["paper_speedup_mem"] = dict(reference.RPC_SER_SPEEDUP_MEM)
    text = render_series(
        "bench",
        series,
        title="Fig. 18b: serialization time and speedups",
    )
    return ExperimentResult("fig18b", fig18b_serialization.__doc__, series, text)


# ---------------------------------------------------------------------
# Tables and headline numbers
# ---------------------------------------------------------------------
def table1_configurations() -> ExperimentResult:
    """Table I: hardware testbed vs. SimCXL configuration."""
    testbed = testbed_table1_config().rows()
    simcxl = simcxl_table1_config()
    rows = [[k, testbed[k], simcxl[k]] for k in testbed]
    text = render_table(
        ["Config. Parameter", "CXL Testbed", "SimCXL"],
        rows,
        title="Table I: configurations for hardware testbed and SimCXL",
    )
    series = {"testbed": testbed, "simcxl": simcxl}
    return ExperimentResult("table1", table1_configurations.__doc__, series, text)


def table2_comparison() -> ExperimentResult:
    """Table II: SimCXL vs. prior CXL simulators/emulators."""
    from repro.harness.comparison import SIMULATOR_COMPARISON

    text = render_table2()
    return ExperimentResult(
        "table2", table2_comparison.__doc__, dict(SIMULATOR_COMPARISON), text
    )


def headline_metrics(profile: str = "fpga") -> ExperimentResult:
    """§VI headline: CXL.cache vs. DMA at 64B (latency -68%, bandwidth 14.4x)."""
    config = system_by_name(profile)
    mem_lat = CxlTestbench(config).latency_mem_hit(trials=8).median_ns
    dma_lat = CxlTestbench(config).dma_latency(64, repeats=20).median_ns
    mem_bw = CxlTestbench(config).bandwidth_mem_hit().bandwidth_gbps
    dma_bw = CxlTestbench(config).dma_bandwidth(64).bandwidth_gbps
    latency_reduction = 1.0 - mem_lat / dma_lat
    bandwidth_ratio = mem_bw / dma_bw
    series = {
        "measured": {
            "latency_reduction": latency_reduction,
            "bandwidth_ratio": bandwidth_ratio,
        },
    }
    if profile == "fpga":  # §VI's headline figures come from the FPGA testbed
        series["paper"] = {
            "latency_reduction": reference.HEADLINE_LATENCY_REDUCTION,
            "bandwidth_ratio": reference.HEADLINE_BANDWIDTH_RATIO,
        }
    text = render_series(
        "metric",
        series,
        title="Headline: CXL.cache vs. DMA at cacheline granularity",
    )
    return ExperimentResult("headline", headline_metrics.__doc__, series, text)


def simulation_error(
    trials: int = 4,
    fig13_result: Optional[ExperimentResult] = None,
    fig15_result: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Overall calibration MAPE across every latency/bandwidth point.

    Accepts precomputed fig13/fig15 :class:`ExperimentResult`s so a
    sweep runner (or caller that already regenerated those figures) can
    reuse them instead of re-running both experiments from scratch;
    falls back to running them when not supplied.
    """
    pairs: List[Tuple[float, float]] = []
    detail: Dict[str, float] = {}

    fig13 = (fig13_result or fig13_load_latency(trials=trials)).series
    for profile in ("CXL-FPGA@400MHz", "CXL-ASIC@1.5GHz"):
        for tier, ref_value in reference.LOAD_LATENCY_NS[profile].items():
            measured = fig13[profile][tier]
            pairs.append((measured, ref_value))
            detail[f"{profile}/{tier}_lat"] = abs(measured - ref_value) / ref_value
    for dma_name, profile in (
        ("PCIe-FPGA@400MHz", "CXL-FPGA@400MHz"),
        ("PCIe-ASIC@1.5GHz", "CXL-ASIC@1.5GHz"),
    ):
        measured = fig13[profile]["dma_64b"]
        ref_value = reference.DMA_LATENCY_64B_NS[dma_name]
        pairs.append((measured, ref_value))
        detail[f"{dma_name}/dma64_lat"] = abs(measured - ref_value) / ref_value

    fig15 = (fig15_result or fig15_load_bandwidth()).series
    for profile in ("CXL-FPGA@400MHz", "CXL-ASIC@1.5GHz"):
        for tier, ref_value in reference.LOAD_BANDWIDTH_GBPS[profile].items():
            measured = fig15[profile][tier]
            pairs.append((measured, ref_value))
            detail[f"{profile}/{tier}_bw"] = abs(measured - ref_value) / ref_value
    for dma_name, profile in (
        ("PCIe-FPGA@400MHz", "CXL-FPGA@400MHz"),
        ("PCIe-ASIC@1.5GHz", "CXL-ASIC@1.5GHz"),
    ):
        measured = fig15[profile]["dma_64b"]
        ref_value = reference.DMA_BANDWIDTH_64B_GBPS[dma_name]
        pairs.append((measured, ref_value))
        detail[f"{dma_name}/dma64_bw"] = abs(measured - ref_value) / ref_value

    overall = mape(pairs)
    series = {"per_point": detail, "overall": {"mape": overall}}
    rows = [[k, f"{v * 100:.2f}%"] for k, v in sorted(detail.items())]
    rows.append(["OVERALL MAPE", f"{overall * 100:.2f}%"])
    text = render_table(
        ["calibration point", "abs. error"],
        rows,
        title="Simulation error vs. hardware reference (paper: ~3%)",
    )
    return ExperimentResult("mape", simulation_error.__doc__, series, text)


def fig4_programming_models() -> ExperimentResult:
    """Fig. 4: programming-model comparison (explicit/UM/Cohet)."""
    from repro.harness.programming_models import fig4_programming_models as run

    return run()


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_configurations,
    "fig4": fig4_programming_models,
    "table2": table2_comparison,
    "fig12": fig12_numa_latency,
    "fig13": fig13_load_latency,
    "fig14": fig14_dma_latency,
    "fig15": fig15_load_bandwidth,
    "fig16": fig16_dma_bandwidth,
    "fig17": fig17_rao_speedup,
    "fig18a": fig18a_deserialization,
    "fig18b": fig18b_serialization,
    "headline": headline_metrics,
    "mape": simulation_error,
}

#: The paper's tables/figures, in presentation order.  ``repro run all``
#: expands to exactly this set so its output stays comparable run-over-run
#: even as extension experiments (fan-outs, ...) join :data:`EXPERIMENTS`.
PAPER_EXPERIMENT_IDS: Tuple[str, ...] = tuple(EXPERIMENTS)


def register_experiment(
    name: str, runner: Callable[..., ExperimentResult], replace: bool = False
) -> None:
    """Add an experiment to the registry (sweeps pick it up for free).

    The runner must accept only JSON-representable keyword arguments so
    sweep specs can parameterize it.  Registration invalidates the
    cached signature inspection.
    """
    if name in EXPERIMENTS and not replace:
        raise ValueError(f"experiment {name!r} already registered")
    EXPERIMENTS[name] = runner
    _cached_signature.cache_clear()


@lru_cache(maxsize=None)
def _cached_signature(name: str, runner: Callable) -> "inspect.Signature":
    """Signature inspection is surprisingly costly and was recomputed
    per spec on every sweep expansion; cache it per registry entry
    (keyed on the runner too, so re-registration never serves a stale
    signature)."""
    return inspect.signature(runner)


def experiment_parameters(name: str) -> Dict[str, inspect.Parameter]:
    """Keyword parameters accepted by experiment ``name``.

    The sweep spec layer validates config overrides against this before
    any worker starts, so a typo'd parameter fails the whole sweep
    up-front instead of mid-run.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    return dict(_cached_signature(name, runner).parameters)


def spec_parameters(name: str) -> Dict[str, inspect.Parameter]:
    """The JSON-representable subset of :func:`experiment_parameters`.

    Programmatic-only parameters cannot be expressed in a sweep spec,
    so the spec layer validates against this set to keep its
    fail-up-front guarantee.  Convention: name object-valued params
    with a ``_result`` suffix (like ``simulation_error``'s
    ``fig13_result`` precomputed handoffs) to keep them off the spec
    surface; annotations mentioning ``ExperimentResult`` are excluded
    as well.
    """
    return {
        key: param
        for key, param in experiment_parameters(name).items()
        if not key.endswith("_result")
        and "ExperimentResult" not in str(param.annotation)
    }


def run_experiment(name: str, **params) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`).

    Extra keyword arguments are forwarded to the experiment function;
    unknown ones raise :class:`TypeError` naming the offenders.
    """
    accepted = experiment_parameters(name)
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise TypeError(
            f"experiment {name!r} does not accept parameter(s) "
            f"{', '.join(unknown)}; accepted: {sorted(accepted)}"
        )
    return EXPERIMENTS[name](**params)


# Multi-device topology and workload-driven experiments register
# themselves on import; these must stay after the registry helpers so
# the module is self-contained for every consumer of EXPERIMENTS.
from repro.harness import topology_experiments as _topology_experiments  # noqa: E402,F401
from repro.harness import workload_experiments as _workload_experiments  # noqa: E402,F401
from repro.harness import fault_experiments as _fault_experiments  # noqa: E402,F401
