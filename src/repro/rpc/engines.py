"""Hardware (de)serializer engines: field-by-field wire walking.

The pipeline models in :mod:`repro.rpc.rpcnic`/:mod:`repro.rpc.cxl_rpc`
account aggregate per-message costs; these engines expose the
*per-field event stream* underneath — which field was decoded at what
offset, in what order, and for the CXL-NIC which cacheline each NC-P
push targets.  They walk real wire bytes against the schema table the
way the hardware does (Fig. 10's deserializer / Fig. 11's DCOH).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.config.system import RpcParams
from repro.mem.address import CACHELINE, line_base
from repro.rpc.message import _decode_scalar
from repro.rpc.schema import FieldDescriptor, FieldKind, MessageSchema, SchemaTable
from repro.rpc.wire import WireError, decode_key, decode_len_prefixed


@dataclass
class FieldEvent:
    """One field decoded/encoded by the hardware engine."""

    path: str              # e.g. "chain.next.u3"
    kind: str
    wire_offset: int
    wire_bytes: int
    cost_ps: int
    depth: int


class HwDeserializer:
    """Field-by-field decoder producing the per-field event stream."""

    def __init__(self, params: RpcParams, table: SchemaTable) -> None:
        self.params = params
        self.table = table
        self.fields_decoded = 0
        self.bytes_decoded = 0

    def decode(self, type_id: int, wire: bytes) -> Tuple[Dict, List[FieldEvent]]:
        """Decode a full message; returns (value, ordered field events)."""
        schema = self.table.lookup(type_id)
        events: List[FieldEvent] = []
        value = self._decode_block(schema, wire, prefix="", depth=0, base_offset=0,
                                   events=events)
        return value, events

    def _decode_block(
        self,
        schema: MessageSchema,
        data: bytes,
        prefix: str,
        depth: int,
        base_offset: int,
        events: List[FieldEvent],
    ) -> Dict:
        value: Dict = {}
        offset = 0
        while offset < len(data):
            start = offset
            number, wire_type, offset = decode_key(data, offset)
            descriptor = schema.field_by_number(number)
            if descriptor.wire_type is not wire_type:
                raise WireError(
                    f"{prefix}{descriptor.name}: wire type mismatch"
                )
            path = f"{prefix}{descriptor.name}"
            if descriptor.kind == FieldKind.MESSAGE and not descriptor.repeated:
                raw, offset = decode_len_prefixed(data, offset)
                inner_base = base_offset + offset - len(raw)
                value[descriptor.name] = self._decode_block(
                    schema=descriptor.message,
                    data=raw,
                    prefix=f"{path}.",
                    depth=depth + 1,
                    base_offset=inner_base,
                    events=events,
                )
                events.append(
                    FieldEvent(
                        path=path,
                        kind=descriptor.kind,
                        wire_offset=base_offset + start,
                        wire_bytes=offset - start,
                        cost_ps=self.params.decode_nest_ps,
                        depth=depth,
                    )
                )
                continue
            if descriptor.repeated:
                raise WireError("HwDeserializer models singular-field messages")
            element, offset = _decode_scalar(descriptor, data, offset)
            value[descriptor.name] = element
            size = offset - start
            cost = self.params.decode_field_ps + self.params.decode_byte_ps * size
            events.append(
                FieldEvent(
                    path=path,
                    kind=descriptor.kind,
                    wire_offset=base_offset + start,
                    wire_bytes=size,
                    cost_ps=cost,
                    depth=depth,
                )
            )
            self.fields_decoded += 1
            self.bytes_decoded += size
        return value

    # ------------------------------------------------------------------
    # NC-P planning (Fig. 11 step 2)
    # ------------------------------------------------------------------
    def ncp_plan(
        self, events: List[FieldEvent], dest_base: int = 0x2000_0000
    ) -> List[int]:
        """Cachelines pushed to the host LLC, in decode order, deduped.

        Decoded fields accumulate into a destination buffer; a line is
        pushed once its last field is decoded, so the push order follows
        the decode stream.
        """
        lines: List[int] = []
        seen = set()
        cursor = dest_base
        for event in events:
            for off in range(0, max(1, event.wire_bytes), CACHELINE):
                line = line_base(cursor + off)
                if line not in seen:
                    seen.add(line)
                    lines.append(line)
            cursor += event.wire_bytes
        return lines


class HwSerializer:
    """Field-by-field encoder event stream (the TX side)."""

    def __init__(self, params: RpcParams, table: SchemaTable) -> None:
        self.params = params
        self.table = table
        self.fields_encoded = 0

    def encode(self, type_id: int, value: Dict) -> Tuple[bytes, List[FieldEvent]]:
        from repro.rpc.message import encode_message

        schema = self.table.lookup(type_id)
        events: List[FieldEvent] = []
        self._walk(schema, value, "", 0, events)
        wire = encode_message(schema, value)
        return wire, events

    def _walk(
        self,
        schema: MessageSchema,
        value: Dict,
        prefix: str,
        depth: int,
        events: List[FieldEvent],
    ) -> None:
        from repro.rpc.message import encode_message, _encode_scalar

        for descriptor in schema.fields:
            if descriptor.name not in value:
                continue
            path = f"{prefix}{descriptor.name}"
            item = value[descriptor.name]
            if descriptor.kind == FieldKind.MESSAGE and not descriptor.repeated:
                self._walk(descriptor.message, item, f"{path}.", depth + 1, events)
                events.append(
                    FieldEvent(path, descriptor.kind, 0,
                               len(encode_message(descriptor.message, item)),
                               self.params.encode_nest_ps, depth)
                )
                continue
            if descriptor.repeated:
                raise WireError("HwSerializer models singular-field messages")
            size = len(_encode_scalar(descriptor, item))
            cost = self.params.encode_field_ps + self.params.encode_byte_ps * size
            events.append(FieldEvent(path, descriptor.kind, 0, size, cost, depth))
            self.fields_encoded += 1
