"""HyperProtoBench-style workloads (§VI-E).

Six benches model the message populations of Google's production
fleet study: Bench1 is dominated by small scalar fields, Bench2 by
deep nesting (pointer chasing), Bench5 by large string fields; the
rest mix the regimes.  Schemas are built from real protobuf field
descriptors and messages are generated deterministically, so the
pipelines operate on genuine wire bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.rpc.message import (
    MessageStats,
    encode_message,
    generate_message,
    message_stats,
)
from repro.rpc.schema import FieldDescriptor, FieldKind, MessageSchema, SchemaTable

BENCH_NAMES = ("Bench0", "Bench1", "Bench2", "Bench3", "Bench4", "Bench5")


def _scalars(start: int, uints: int = 0, doubles: int = 0, strings: int = 0) -> List[FieldDescriptor]:
    fields = []
    number = start
    for _ in range(uints):
        fields.append(FieldDescriptor(number, f"u{number}", FieldKind.UINT))
        number += 1
    for _ in range(doubles):
        fields.append(FieldDescriptor(number, f"d{number}", FieldKind.DOUBLE))
        number += 1
    for _ in range(strings):
        fields.append(FieldDescriptor(number, f"s{number}", FieldKind.STRING))
        number += 1
    return fields


def _nested(number: int, name: str, schema: MessageSchema) -> FieldDescriptor:
    return FieldDescriptor(number, name, FieldKind.MESSAGE, schema)


def _bench0() -> MessageSchema:
    """Mixed typical microservice payload."""
    inner2 = MessageSchema("B0.Inner2", tuple(_scalars(1, uints=8, strings=1)))
    inner1 = MessageSchema(
        "B0.Inner1",
        tuple(_scalars(1, uints=10, strings=1) + [_nested(12, "next", inner2)]),
    )
    inner3 = MessageSchema("B0.Side", tuple(_scalars(1, uints=6, strings=1)))
    fields = _scalars(1, uints=12, doubles=2, strings=1)
    fields += [_nested(16, "chain", inner1), _nested(17, "side", inner3)]
    return MessageSchema("B0.Root", tuple(fields))


def _bench1() -> MessageSchema:
    """Small scalar fields (the highest-speedup regime)."""
    inner = MessageSchema("B1.Inner", tuple(_scalars(1, uints=10, doubles=4)))
    fields = _scalars(1, uints=10, doubles=4) + [_nested(15, "inner", inner)]
    return MessageSchema("B1.Root", tuple(fields))


def _bench2() -> MessageSchema:
    """Deeply nested (>10 levels of pointer chasing)."""
    schema = MessageSchema("B2.L12", tuple(_scalars(1, uints=3, strings=1)))
    for level in range(11, 0, -1):
        fields = _scalars(1, uints=3, strings=1) + [_nested(5, "next", schema)]
        schema = MessageSchema(f"B2.L{level}", tuple(fields))
    return schema


def _bench3() -> MessageSchema:
    inners = [
        MessageSchema(f"B3.Inner{i}", tuple(_scalars(1, uints=7, strings=1)))
        for i in range(3)
    ]
    fields = _scalars(1, uints=9, doubles=1, strings=1)
    fields += [_nested(12 + i, f"part{i}", inner) for i, inner in enumerate(inners)]
    return MessageSchema("B3.Root", tuple(fields))


def _bench4() -> MessageSchema:
    inners = [
        MessageSchema(f"B4.Inner{i}", tuple(_scalars(1, uints=9, strings=1)))
        for i in range(2)
    ]
    fields = _scalars(1, uints=7, doubles=1, strings=1)
    fields += [_nested(10 + i, f"blob{i}", inner) for i, inner in enumerate(inners)]
    return MessageSchema("B4.Root", tuple(fields))


def _bench5() -> MessageSchema:
    """Large string fields (bulk payloads favouring DMA)."""
    inner = MessageSchema("B5.Inner", tuple(_scalars(1, uints=4, strings=1)))
    fields = _scalars(1, uints=4, strings=2) + [_nested(7, "inner", inner)]
    return MessageSchema("B5.Root", tuple(fields))


# Per-bench string sizing (bytes) used by the generator.
_BUILDERS: Dict[str, Callable[[], MessageSchema]] = {
    "Bench0": _bench0,
    "Bench1": _bench1,
    "Bench2": _bench2,
    "Bench3": _bench3,
    "Bench4": _bench4,
    "Bench5": _bench5,
}

_STRING_BYTES: Dict[str, int] = {
    "Bench0": 60,
    "Bench1": 16,
    "Bench2": 30,
    "Bench3": 150,
    "Bench4": 400,
    "Bench5": 1000,
}


@dataclass
class BenchWorkload:
    """A generated bench: schemas, values, wire bytes, and stats."""

    name: str
    schema: MessageSchema
    table: SchemaTable
    values: List[Dict]
    encoded: List[bytes]
    stats: List[MessageStats]

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean_wire_bytes(self) -> float:
        return sum(s.wire_bytes for s in self.stats) / len(self.stats)

    @property
    def mean_fields(self) -> float:
        return sum(s.scalar_fields for s in self.stats) / len(self.stats)

    @property
    def mean_nested(self) -> float:
        return sum(s.nested_messages for s in self.stats) / len(self.stats)


def make_bench(name: str, messages: int = 300, seed: int = 11) -> BenchWorkload:
    """Instantiate one bench with ``messages`` generated messages."""
    if name not in _BUILDERS:
        raise ValueError(f"unknown bench {name!r}; options: {BENCH_NAMES}")
    schema = _BUILDERS[name]()
    table = SchemaTable()
    table.load(0, schema)
    rng = random.Random(seed * 1009 + BENCH_NAMES.index(name))
    string_bytes = _STRING_BYTES[name]
    values = [generate_message(schema, rng, string_bytes) for _ in range(messages)]
    encoded = [encode_message(schema, v) for v in values]
    stats = [message_stats(schema, v) for v in values]
    return BenchWorkload(name, schema, table, values, encoded, stats)
