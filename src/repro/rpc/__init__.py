"""RPC offloading: protobuf wire format, schemas, NIC pipelines."""

from repro.rpc.wire import (
    WireType,
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.rpc.schema import FieldDescriptor, FieldKind, MessageSchema, SchemaTable
from repro.rpc.message import (
    MessageStats,
    decode_message,
    encode_message,
    generate_message,
    message_stats,
)
from repro.rpc.hyperprotobench import BENCH_NAMES, BenchWorkload, make_bench
from repro.rpc.layout import AccessUnit, ObjectLayout, UnitKind, layout_message
from repro.rpc.engines import FieldEvent, HwDeserializer, HwSerializer
from repro.rpc.rpcnic import RpcNicPipeline
from repro.rpc.cxl_rpc import CxlRpcPipeline
from repro.rpc.harness import RpcComparison, run_rpc_comparison

__all__ = [
    "WireType",
    "decode_varint",
    "encode_varint",
    "zigzag_decode",
    "zigzag_encode",
    "FieldDescriptor",
    "FieldKind",
    "MessageSchema",
    "SchemaTable",
    "MessageStats",
    "decode_message",
    "encode_message",
    "generate_message",
    "message_stats",
    "BENCH_NAMES",
    "BenchWorkload",
    "make_bench",
    "AccessUnit",
    "ObjectLayout",
    "UnitKind",
    "layout_message",
    "FieldEvent",
    "HwDeserializer",
    "HwSerializer",
    "RpcNicPipeline",
    "CxlRpcPipeline",
    "RpcComparison",
    "run_rpc_comparison",
]
