"""Message values: encode/decode against a schema, generate test data.

A message value is a dict from field name to a Python value; nested
messages are dicts.  ``encode_message``/``decode_message`` implement
the schema-guided walk the hardware engines perform, built on the wire
primitives, and they round-trip exactly (property-tested).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.rpc.schema import FieldDescriptor, FieldKind, MessageSchema
from repro.rpc.wire import (
    WireError,
    WireType,
    decode_fixed64,
    decode_key,
    decode_len_prefixed,
    decode_varint,
    encode_fixed64,
    encode_key,
    encode_len_prefixed,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)


def _encode_scalar(descriptor: FieldDescriptor, item) -> bytes:
    if descriptor.kind == FieldKind.UINT:
        return encode_varint(int(item))
    if descriptor.kind == FieldKind.SINT:
        return encode_varint(zigzag_encode(int(item)))
    if descriptor.kind == FieldKind.DOUBLE:
        return encode_fixed64(float(item))
    if descriptor.kind == FieldKind.STRING:
        return encode_len_prefixed(item.encode("utf-8"))
    if descriptor.kind == FieldKind.BYTES:
        return encode_len_prefixed(bytes(item))
    raise ValueError(f"not a scalar kind: {descriptor.kind}")


def encode_message(schema: MessageSchema, value: Dict) -> bytes:
    """Serialize ``value`` per ``schema`` into protobuf wire bytes."""
    out = bytearray()
    for descriptor in schema.fields:
        if descriptor.name not in value:
            continue   # proto3 semantics: absent fields are skipped
        item = value[descriptor.name]
        if descriptor.repeated:
            if not item:
                # proto3: an empty repeated field is absent on the wire.
                continue
            if descriptor.packed:
                # One LEN record holding every element back to back.
                payload = bytearray()
                for element in item:
                    payload += _encode_scalar(descriptor, element)
                out += encode_key(descriptor.number, descriptor.wire_type)
                out += encode_len_prefixed(bytes(payload))
            else:
                for element in item:
                    out += encode_key(descriptor.number, descriptor.wire_type)
                    if descriptor.kind == FieldKind.MESSAGE:
                        out += encode_len_prefixed(
                            encode_message(descriptor.message, element)
                        )
                    else:
                        out += _encode_scalar(descriptor, element)
            continue
        out += encode_key(descriptor.number, descriptor.wire_type)
        if descriptor.kind == FieldKind.MESSAGE:
            out += encode_len_prefixed(encode_message(descriptor.message, item))
        else:
            out += _encode_scalar(descriptor, item)
    return bytes(out)


def _decode_scalar(descriptor: FieldDescriptor, data: bytes, offset: int):
    if descriptor.kind == FieldKind.UINT:
        return decode_varint(data, offset)
    if descriptor.kind == FieldKind.SINT:
        raw, offset = decode_varint(data, offset)
        return zigzag_decode(raw), offset
    if descriptor.kind == FieldKind.DOUBLE:
        return decode_fixed64(data, offset)
    if descriptor.kind == FieldKind.STRING:
        raw, offset = decode_len_prefixed(data, offset)
        return raw.decode("utf-8"), offset
    if descriptor.kind == FieldKind.BYTES:
        return decode_len_prefixed(data, offset)
    raise ValueError(f"not a scalar kind: {descriptor.kind}")


def decode_message(schema: MessageSchema, data: bytes) -> Dict:
    """Parse wire bytes back into a value dict (unknown fields rejected)."""
    value: Dict = {}
    offset = 0
    while offset < len(data):
        number, wire_type, offset = decode_key(data, offset)
        descriptor = schema.field_by_number(number)
        if descriptor.wire_type is not wire_type:
            raise WireError(
                f"field {descriptor.name} expected {descriptor.wire_type}, got {wire_type}"
            )
        if descriptor.packed:
            payload, offset = decode_len_prefixed(data, offset)
            elements = value.setdefault(descriptor.name, [])
            inner = 0
            while inner < len(payload):
                element, inner = _decode_scalar(descriptor, payload, inner)
                elements.append(element)
        elif descriptor.repeated:
            elements = value.setdefault(descriptor.name, [])
            if descriptor.kind == FieldKind.MESSAGE:
                raw, offset = decode_len_prefixed(data, offset)
                elements.append(decode_message(descriptor.message, raw))
            else:
                element, offset = _decode_scalar(descriptor, data, offset)
                elements.append(element)
        elif descriptor.kind == FieldKind.MESSAGE:
            raw, offset = decode_len_prefixed(data, offset)
            value[descriptor.name] = decode_message(descriptor.message, raw)
        else:
            value[descriptor.name], offset = _decode_scalar(descriptor, data, offset)
    return value


@dataclass
class MessageStats:
    """The cost drivers the hardware pipelines care about."""

    wire_bytes: int
    scalar_fields: int
    nested_messages: int
    max_depth: int


def message_stats(schema: MessageSchema, value: Dict) -> MessageStats:
    encoded = encode_message(schema, value)
    fields, nested, depth = _walk(schema, value, 0)
    return MessageStats(
        wire_bytes=len(encoded),
        scalar_fields=fields,
        nested_messages=nested,
        max_depth=depth,
    )


def _walk(schema: MessageSchema, value: Dict, depth: int):
    fields = 0
    nested = 0
    max_depth = depth
    for descriptor in schema.fields:
        if descriptor.name not in value:
            continue
        item = value[descriptor.name]
        elements = item if descriptor.repeated else [item]
        for element in elements:
            if descriptor.kind == FieldKind.MESSAGE:
                nested += 1
                f, n, d = _walk(descriptor.message, element, depth + 1)
                fields += f
                nested += n
                max_depth = max(max_depth, d)
            else:
                fields += 1
    return fields, nested, max_depth


def generate_message(
    schema: MessageSchema,
    rng: random.Random,
    string_bytes: int = 16,
) -> Dict:
    """Fill every field of ``schema`` with deterministic random data."""
    value: Dict = {}
    for descriptor in schema.fields:
        if descriptor.repeated:
            count = rng.randint(1, 4)
            value[descriptor.name] = [
                _generate_element(descriptor, rng, string_bytes)
                for _ in range(count)
            ]
        else:
            value[descriptor.name] = _generate_element(descriptor, rng, string_bytes)
    return value


def _generate_element(descriptor: FieldDescriptor, rng: random.Random, string_bytes: int):
    if descriptor.kind == FieldKind.UINT:
        return rng.randrange(1 << 20)
    if descriptor.kind == FieldKind.SINT:
        return rng.randrange(-(1 << 19), 1 << 19)
    if descriptor.kind == FieldKind.DOUBLE:
        return rng.random() * 1e6
    if descriptor.kind == FieldKind.STRING:
        size = max(1, int(string_bytes * rng.uniform(0.9, 1.1)))
        return "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(size)
        )
    if descriptor.kind == FieldKind.BYTES:
        size = max(1, int(string_bytes * rng.uniform(0.9, 1.1)))
        return bytes(rng.randrange(256) for _ in range(size))
    if descriptor.kind == FieldKind.MESSAGE:
        return generate_message(descriptor.message, rng, string_bytes)
    raise ValueError(f"unknown kind {descriptor.kind}")
