"""Message schemas and the NIC schema table.

The host pre-runs the protobuf compiler and loads message-structure
metadata into the NIC's schema table (Fig. 10); the hardware
(de)serializer walks this metadata to decode/encode field-by-field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rpc.wire import WireType


class FieldKind:
    UINT = "uint64"          # varint
    SINT = "sint64"          # zigzag varint
    DOUBLE = "double"        # fixed64
    STRING = "string"        # length-delimited
    BYTES = "bytes"          # length-delimited
    MESSAGE = "message"      # nested, length-delimited

    SCALARS = (UINT, SINT, DOUBLE, STRING, BYTES)
    ALL = (UINT, SINT, DOUBLE, STRING, BYTES, MESSAGE)


_WIRE_OF = {
    FieldKind.UINT: WireType.VARINT,
    FieldKind.SINT: WireType.VARINT,
    FieldKind.DOUBLE: WireType.I64,
    FieldKind.STRING: WireType.LEN,
    FieldKind.BYTES: WireType.LEN,
    FieldKind.MESSAGE: WireType.LEN,
}


@dataclass(frozen=True)
class FieldDescriptor:
    """One field of a message schema.

    ``repeated`` fields hold lists; repeated numeric fields use proto3's
    packed encoding (one length-delimited record), while repeated
    strings/bytes/messages repeat the field key per element.
    """

    number: int
    name: str
    kind: str
    message: Optional["MessageSchema"] = None   # for nested fields
    repeated: bool = False

    def __post_init__(self) -> None:
        if self.number < 1:
            raise ValueError("field numbers start at 1")
        if self.kind not in FieldKind.ALL:
            raise ValueError(f"unknown field kind {self.kind!r}")
        if (self.kind == FieldKind.MESSAGE) != (self.message is not None):
            raise ValueError("message kind and nested schema must go together")

    @property
    def packed(self) -> bool:
        """proto3: repeated numeric fields default to packed encoding."""
        return self.repeated and self.kind in (
            FieldKind.UINT,
            FieldKind.SINT,
            FieldKind.DOUBLE,
        )

    @property
    def wire_type(self) -> WireType:
        if self.packed:
            return WireType.LEN
        return _WIRE_OF[self.kind]


@dataclass(frozen=True)
class MessageSchema:
    """An ordered set of field descriptors."""

    name: str
    fields: tuple

    def __post_init__(self) -> None:
        numbers = [f.number for f in self.fields]
        if len(numbers) != len(set(numbers)):
            raise ValueError(f"duplicate field numbers in {self.name}")

    def field_by_number(self, number: int) -> FieldDescriptor:
        for f in self.fields:
            if f.number == number:
                return f
        raise KeyError(f"{self.name} has no field {number}")

    def scalar_field_count(self) -> int:
        """Recursive count of scalar fields (one nested instance each)."""
        count = 0
        for f in self.fields:
            if f.kind == FieldKind.MESSAGE:
                count += f.message.scalar_field_count()
            else:
                count += 1
        return count

    def nested_message_count(self) -> int:
        count = 0
        for f in self.fields:
            if f.kind == FieldKind.MESSAGE:
                count += 1 + f.message.nested_message_count()
        return count

    def max_depth(self) -> int:
        depth = 0
        for f in self.fields:
            if f.kind == FieldKind.MESSAGE:
                depth = max(depth, 1 + f.message.max_depth())
        return depth


class SchemaTable:
    """The NIC-resident table mapping message-type ids to schemas."""

    def __init__(self) -> None:
        self._schemas: Dict[int, MessageSchema] = {}
        self.lookups = 0

    def load(self, type_id: int, schema: MessageSchema) -> None:
        if type_id in self._schemas:
            raise ValueError(f"type id {type_id} already loaded")
        self._schemas[type_id] = schema

    def lookup(self, type_id: int) -> MessageSchema:
        self.lookups += 1
        try:
            return self._schemas[type_id]
        except KeyError:
            raise KeyError(f"schema table has no type id {type_id}") from None

    def __len__(self) -> int:
        return len(self._schemas)
