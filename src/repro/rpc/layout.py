"""In-memory object layout of decoded messages.

The CXL.cache serialization path reads the host's in-memory C++ object
graph field by field.  What the serializer actually touches:

* a HOP per message block — a pointer chase into the block (root
  object or a nested message's separate heap allocation);
* DESCRIPTOR walks — strided reads over the block's field storage;
* BODY lines — the bulk bytes of string/bytes payloads.

Root objects come from a slab (consecutive messages sit at a regular
stride — prefetchable across messages); nested blocks come from a
fragmented heap with irregular gaps, which is why deep nesting defeats
the stride prefetcher.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.mem.address import CACHELINE
from repro.rpc.schema import FieldKind, MessageSchema


class UnitKind(enum.Enum):
    HOP = "hop"                  # serial pointer chase
    DESCRIPTOR = "descriptor"    # strided field-storage walk
    BODY = "body"                # bulk payload line


@dataclass(frozen=True)
class AccessUnit:
    kind: UnitKind
    addr: int


@dataclass
class ObjectLayout:
    """Access-unit trace for one message instance."""

    units: List[AccessUnit]

    def count(self, kind: UnitKind) -> int:
        return sum(1 for u in self.units if u.kind is kind)

    def __len__(self) -> int:
        return len(self.units)


class SlabAllocator:
    """Placement model: regular slab for roots, fragmented heap for
    nested blocks."""

    def __init__(self, seed: int = 3, slab_base: int = 0x9000_0000,
                 heap_base: int = 0xB000_0000) -> None:
        self._rng = random.Random(seed)
        self._slab = slab_base
        self._heap = heap_base

    def alloc_root(self, size: int) -> int:
        addr = self._slab
        self._slab += _round_line(size)
        return addr

    def alloc_nested(self, size: int) -> int:
        # Heap fragmentation: irregular padding between blocks.
        self._heap += self._rng.randrange(0, 4) * CACHELINE + CACHELINE
        addr = self._heap
        self._heap += _round_line(size)
        return addr


def _round_line(size: int) -> int:
    return -(-size // CACHELINE) * CACHELINE


FIELDS_PER_DESCRIPTOR = 10   # one descriptor line covers ~10 field slots


def layout_message(
    schema: MessageSchema,
    value: Dict,
    allocator: SlabAllocator,
    root: bool = True,
) -> ObjectLayout:
    """Walk a message instance and emit its access-unit trace."""
    units: List[AccessUnit] = []
    _layout_block(schema, value, allocator, root, units)
    return ObjectLayout(units)


def _layout_block(
    schema: MessageSchema,
    value: Dict,
    allocator: SlabAllocator,
    root: bool,
    units: List[AccessUnit],
) -> None:
    scalar_fields = 0
    body_bytes = 0
    nested: List[tuple] = []
    for descriptor in schema.fields:
        if descriptor.name not in value:
            continue
        item = value[descriptor.name]
        if descriptor.kind == FieldKind.MESSAGE:
            nested.append((descriptor, item))
        else:
            scalar_fields += 1
            if descriptor.kind in (FieldKind.STRING, FieldKind.BYTES):
                body_bytes += len(item)

    descriptors = -(-scalar_fields // FIELDS_PER_DESCRIPTOR) if scalar_fields else 0
    body_lines = -(-body_bytes // CACHELINE) if body_bytes else 0
    block_size = CACHELINE * (1 + descriptors + body_lines)
    base = allocator.alloc_root(block_size) if root else allocator.alloc_nested(block_size)

    units.append(AccessUnit(UnitKind.HOP, base))
    for k in range(descriptors):
        units.append(AccessUnit(UnitKind.DESCRIPTOR, base + CACHELINE * (1 + k)))
    for k in range(body_lines):
        units.append(
            AccessUnit(UnitKind.BODY, base + CACHELINE * (1 + descriptors + k))
        )
    for descriptor, item in nested:
        _layout_block(descriptor.message, item, allocator, False, units)
