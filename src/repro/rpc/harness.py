"""RPC evaluation harness: CXL-NIC vs. RpcNIC over HyperProtoBench."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config.system import SystemConfig
from repro.rpc.cxl_rpc import CxlRpcPipeline
from repro.rpc.hyperprotobench import BENCH_NAMES, make_bench
from repro.rpc.rpcnic import PipelineResult, RpcNicPipeline
from repro.system import SystemBuilder


@dataclass
class RpcComparison:
    """Fig. 18 rows for one bench."""

    bench: str
    deser_rpcnic_us: float
    deser_cxl_us: float
    ser_rpcnic_us: float
    ser_cxl_mem_us: float
    ser_cxl_cache_us: float
    ser_cxl_cache_pf_us: float

    @property
    def deser_speedup(self) -> float:
        return self.deser_rpcnic_us / self.deser_cxl_us

    @property
    def ser_speedup_mem(self) -> float:
        return self.ser_rpcnic_us / self.ser_cxl_mem_us

    @property
    def ser_speedup_cache(self) -> float:
        return self.ser_rpcnic_us / self.ser_cxl_cache_us

    @property
    def ser_speedup_cache_pf(self) -> float:
        return self.ser_rpcnic_us / self.ser_cxl_cache_pf_us

    @property
    def prefetch_gain(self) -> float:
        """Fractional serialization improvement from the prefetcher."""
        return 1.0 - self.ser_cxl_cache_pf_us / self.ser_cxl_cache_us


def run_rpc_comparison(
    config: SystemConfig,
    benches: Sequence[str] = BENCH_NAMES,
    messages: int = 300,
    seed: int = 11,
) -> Dict[str, RpcComparison]:
    """Run every bench through all four designs."""
    system = SystemBuilder(config).build("rpc")
    rpcnic: RpcNicPipeline = system.node("rpcnic")
    cxl: CxlRpcPipeline = system.node("cxl-rpc")
    results: Dict[str, RpcComparison] = {}
    for name in benches:
        bench = make_bench(name, messages=messages, seed=seed)
        deser_rpc = rpcnic.deserialize_bench(bench)
        deser_cxl = cxl.deserialize_bench(bench)
        ser_rpc = rpcnic.serialize_bench(bench)
        ser_mem = cxl.serialize_bench_mem(bench)
        ser_cache = cxl.serialize_bench_cache(bench, prefetch=False)
        ser_cache_pf = cxl.serialize_bench_cache(bench, prefetch=True)
        for result in (deser_rpc, deser_cxl, ser_rpc, ser_mem, ser_cache, ser_cache_pf):
            if not result.verified:
                raise AssertionError(f"{result.design} failed verification on {name}")
        results[name] = RpcComparison(
            bench=name,
            deser_rpcnic_us=deser_rpc.total_us,
            deser_cxl_us=deser_cxl.total_us,
            ser_rpcnic_us=ser_rpc.total_us,
            ser_cxl_mem_us=ser_mem.total_us,
            ser_cxl_cache_us=ser_cache.total_us,
            ser_cxl_cache_pf_us=ser_cache_pf.total_us,
        )
    return results
