"""Protocol Buffers wire format.

A from-scratch implementation of the protobuf encoding the hardware
(de)serializers operate on: base-128 varints, ZigZag for signed ints,
little-endian fixed 32/64, and length-delimited fields (strings, bytes,
nested messages).  Field keys are ``(field_number << 3) | wire_type``.
"""

from __future__ import annotations

import enum
import struct
from typing import Tuple


class WireType(enum.IntEnum):
    VARINT = 0
    I64 = 1
    LEN = 2
    I32 = 5


class WireError(ValueError):
    """Malformed wire data."""


def encode_varint(value: int) -> bytes:
    """Base-128 varint encoding of an unsigned integer."""
    if value < 0:
        raise WireError("varint requires a non-negative value (use zigzag)")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise WireError("truncated varint")
        if shift > 63:
            raise WireError("varint longer than 64 bits")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto unsigned zigzag space."""
    if not -(1 << 63) <= value < (1 << 63):
        raise WireError("zigzag input outside signed 64-bit range")
    return (value << 1) ^ (value >> 63)


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_key(field_number: int, wire_type: WireType) -> bytes:
    if field_number < 1:
        raise WireError("field numbers start at 1")
    return encode_varint((field_number << 3) | int(wire_type))


def decode_key(data: bytes, offset: int = 0) -> Tuple[int, WireType, int]:
    """Decode a field key; returns ``(field_number, wire_type, next_offset)``."""
    key, pos = decode_varint(data, offset)
    wire_type_raw = key & 0x7
    field_number = key >> 3
    if field_number < 1:
        raise WireError(f"invalid field number {field_number}")
    try:
        wire_type = WireType(wire_type_raw)
    except ValueError:
        raise WireError(f"unsupported wire type {wire_type_raw}") from None
    return field_number, wire_type, pos


def encode_fixed64(value: float) -> bytes:
    return struct.pack("<d", value)


def decode_fixed64(data: bytes, offset: int) -> Tuple[float, int]:
    if offset + 8 > len(data):
        raise WireError("truncated fixed64")
    return struct.unpack_from("<d", data, offset)[0], offset + 8


def encode_fixed32(value: float) -> bytes:
    return struct.pack("<f", value)


def decode_fixed32(data: bytes, offset: int) -> Tuple[float, int]:
    if offset + 4 > len(data):
        raise WireError("truncated fixed32")
    return struct.unpack_from("<f", data, offset)[0], offset + 4


def encode_len_prefixed(payload: bytes) -> bytes:
    return encode_varint(len(payload)) + payload


def decode_len_prefixed(data: bytes, offset: int) -> Tuple[bytes, int]:
    length, pos = decode_varint(data, offset)
    if pos + length > len(data):
        raise WireError("length-delimited field overruns buffer")
    return data[pos : pos + length], pos + length
