"""CXL-NIC RPC offload (Fig. 11).

Deserialization: decoded fields are pushed straight into the host LLC
with NC-P (pipelined, off the critical path); the ring-buffer update is
a single cached-line write.  Serialization comes in three flavours:

* ``mem``   — the CPU builds the message objects in device memory over
  CXL.mem; the serializer then reads locally.
* ``cache`` — the CPU builds objects in host memory as usual; the
  serializer pulls them over CXL.cache, pointer-chasing the object
  graph (optionally assisted by the multi-stride prefetcher).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.system import RpcParams, SystemConfig
from repro.nic.prefetcher import MultiStridePrefetcher, PrefetchBuffer
from repro.rpc.hyperprotobench import BenchWorkload
from repro.rpc.layout import ObjectLayout, SlabAllocator, UnitKind, layout_message
from repro.rpc.message import decode_message, encode_message
from repro.rpc.rpcnic import PipelineResult, decode_time_ps, encode_time_ps


class CxlRpcPipeline:
    """The CXL-NIC design with its three serialization paths."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.params = config.rpc

    # ------------------------------------------------------------------
    # Fig. 18a: deserialization with NC-P pushes
    # ------------------------------------------------------------------
    def deserialize_bench(self, bench: BenchWorkload) -> PipelineResult:
        params = self.params
        times: List[int] = []
        verified = True
        for value, wire, stats in zip(bench.values, bench.encoded, bench.stats):
            decoded = decode_message(bench.schema, wire)
            verified = verified and decoded == value
            # NC-P pushes overlap with decode; only the ring update is
            # exposed per message.
            t = decode_time_ps(params, stats) + params.ncp_ring_update_ps
            times.append(t)
        return PipelineResult("CXL-NIC", bench.name, times, verified)

    # ------------------------------------------------------------------
    # Fig. 18b: serialization via CXL.mem
    # ------------------------------------------------------------------
    def serialize_bench_mem(self, bench: BenchWorkload) -> PipelineResult:
        params = self.params
        times: List[int] = []
        verified = True
        for value, wire, stats in zip(bench.values, bench.encoded, bench.stats):
            encoded = encode_message(bench.schema, value)
            verified = verified and encoded == wire
            t = (
                # CPU writes the object into device memory (write-combined
                # CXL.mem stores; ~8% over host-memory construction).
                params.cxl_mem_field_ps * stats.scalar_fields
                + params.cxl_mem_byte_ps * stats.wire_bytes
                + params.notify_ps
                + encode_time_ps(params, stats)
            )
            times.append(t)
        return PipelineResult("CXL-NIC.mem", bench.name, times, verified)

    # ------------------------------------------------------------------
    # Fig. 18b: serialization via CXL.cache (+ optional prefetcher)
    # ------------------------------------------------------------------
    def serialize_bench_cache(
        self,
        bench: BenchWorkload,
        prefetch: bool = False,
        prefetcher: Optional[MultiStridePrefetcher] = None,
    ) -> PipelineResult:
        params = self.params
        allocator = SlabAllocator(seed=3)
        pf = prefetcher if prefetcher is not None else (
            MultiStridePrefetcher() if prefetch else None
        )
        buffer = PrefetchBuffer() if pf is not None else None
        now_ps = 0
        times: List[int] = []
        verified = True
        for value, wire, stats in zip(bench.values, bench.encoded, bench.stats):
            encoded = encode_message(bench.schema, value)
            verified = verified and encoded == wire
            layout = layout_message(bench.schema, value, allocator)
            fetch = self._fetch_ps(layout, pf, buffer, now_ps)
            t = params.notify_ps + fetch + encode_time_ps(params, stats)
            now_ps += t
            times.append(t)
        design = "CXL-NIC.cache+pf" if pf is not None else "CXL-NIC.cache"
        return PipelineResult(design, bench.name, times, verified)

    def _fetch_ps(
        self,
        layout: ObjectLayout,
        prefetcher: Optional[MultiStridePrefetcher],
        buffer: Optional[PrefetchBuffer],
        start_ps: int,
    ) -> int:
        """Walk the object graph: HOPs and DESCRIPTORs chase serially,
        BODY lines overlap under the DCOH's outstanding window."""
        params = self.params
        miss = params.cache_miss_ps
        hit = params.cache_hit_ps
        elapsed = 0
        for unit in layout.units:
            serial = unit.kind is UnitKind.HOP
            if unit.kind is UnitKind.HOP:
                # Pointer chase, but the fetch front-end runs ahead of
                # the encoder by roughly one block's encode time.
                base = max(hit, miss - params.chase_overlap_ps)
            elif unit.kind is UnitKind.DESCRIPTOR:
                base = max(hit, miss // params.desc_overlap)
            else:
                base = max(hit, miss // params.body_overlap)
            residual = None
            if buffer is not None:
                residual = buffer.residual_ps(unit.addr, start_ps + elapsed, miss)
            if residual is not None:
                cost = max(hit, residual if serial else min(residual, base))
            else:
                cost = base
                if prefetcher is not None and buffer is not None:
                    for pf_addr in prefetcher.observe_miss(unit.addr):
                        buffer.issue(pf_addr, start_ps + elapsed, miss)
            elapsed += cost
        return elapsed


from repro.system.registry import register_component  # noqa: E402


@register_component("rpc.cxl")
def _build_cxl_rpc_pipeline(builder, system, spec) -> CxlRpcPipeline:
    """Builder factory: the CXL-NIC RPC pipeline (three ser. paths)."""
    return CxlRpcPipeline(system.config)
