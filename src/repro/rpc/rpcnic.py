"""RpcNIC: the PCIe-attached RPC offload baseline (Fig. 10).

Deserialization: field-by-field decode into a 4 KB on-chip temp buffer,
one-shot DMA to host memory per message (or buffer fill), ring-buffer
doorbell via DMA write.  Serialization: the CPU pre-serializes with the
DSA memcpy engine into a DMA-safe buffer, rings an NIC doorbell via
MMIO, the NIC pulls the buffer with a DMA read and encodes.

The pipeline verifies functionally (decode/encode round-trips through
the real wire codec) and accounts time from the calibrated RpcParams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config.system import RpcParams, SystemConfig
from repro.rpc.hyperprotobench import BenchWorkload
from repro.rpc.message import MessageStats, decode_message, encode_message


@dataclass
class PipelineResult:
    """Total and per-message times for one bench run.

    ``retransmits``/``dropped`` stay zero on the default clean wire;
    they count lossy-wire recovery when a pipeline runs with a
    ``corrupt_rate`` (see :class:`RpcNicPipeline`).
    """

    design: str
    bench: str
    per_message_ps: List[int]
    verified: bool
    retransmits: int = 0
    dropped: int = 0

    @property
    def total_ps(self) -> int:
        return sum(self.per_message_ps)

    @property
    def total_us(self) -> float:
        return self.total_ps / 1e6

    @property
    def mean_ps(self) -> float:
        return self.total_ps / len(self.per_message_ps)


def decode_time_ps(params: RpcParams, stats: MessageStats) -> int:
    """Field-by-field hardware decode cost (common to both designs)."""
    return (
        params.parse_ps
        + params.decode_field_ps * stats.scalar_fields
        + params.decode_byte_ps * stats.wire_bytes
        + params.decode_nest_ps * stats.nested_messages
    )


def encode_time_ps(params: RpcParams, stats: MessageStats) -> int:
    """Hardware serializer encode cost (common to both designs)."""
    return (
        params.encode_fixed_ps
        + params.encode_field_ps * stats.scalar_fields
        + params.encode_byte_ps * stats.wire_bytes
        + params.encode_nest_ps * stats.nested_messages
    )


class RpcNicPipeline:
    """The PCIe RpcNIC design.

    ``corrupt_rate`` models a lossy wire: each message delivery draws
    deterministically (:func:`repro.faults.plan.corrupt_draw`, the same
    hash the fault controller uses, so the layers cannot drift) and a
    corrupted delivery is retransmitted — the whole per-message cost is
    paid again — up to ``max_retransmits`` times before the message
    counts as dropped.  The default clean wire (rate 0) never draws and
    is bit-identical to the pre-fault pipeline.
    """

    TEMP_BUFFER = 4096

    def __init__(
        self,
        config: SystemConfig,
        corrupt_rate: float = 0.0,
        seed: int = 1234,
        max_retransmits: int = 3,
    ) -> None:
        if not 0 <= corrupt_rate < 1:
            raise ValueError(
                f"corrupt_rate must be in [0, 1), got {corrupt_rate!r}"
            )
        if max_retransmits < 0:
            raise ValueError(
                f"max_retransmits must be >= 0, got {max_retransmits!r}"
            )
        self.config = config
        self.params = config.rpc
        self.corrupt_rate = corrupt_rate
        self.seed = seed
        self.max_retransmits = max_retransmits

    def _deliveries(self, key: str, index: int) -> "tuple[int, bool]":
        """Wire deliveries paid for message ``index``; True = dropped."""
        deliveries = 1
        if self.corrupt_rate <= 0:
            return deliveries, False
        from repro.faults.plan import corrupt_draw

        while corrupt_draw(
            self.seed, f"{key}:{index}", deliveries - 1, self.corrupt_rate
        ):
            if deliveries > self.max_retransmits:
                return deliveries, True
            deliveries += 1
        return deliveries, False

    # ------------------------------------------------------------------
    # Fig. 18a: deserialization
    # ------------------------------------------------------------------
    def deserialize_bench(self, bench: BenchWorkload) -> PipelineResult:
        params = self.params
        times: List[int] = []
        verified = True
        retransmits = 0
        dropped = 0
        for i, (value, wire, stats) in enumerate(
            zip(bench.values, bench.encoded, bench.stats)
        ):
            deliveries, lost = self._deliveries(f"{bench.name}:rx", i)
            retransmits += deliveries - 1
            # One DMA flush per temp-buffer fill (at least one per message).
            flushes = max(1, -(-stats.wire_bytes // self.TEMP_BUFFER))
            t = (
                decode_time_ps(params, stats)
                + flushes * params.flush_fixed_ps
                + params.flush_byte_ps * stats.wire_bytes
            )
            times.append(t * deliveries)
            if lost:
                dropped += 1
                continue
            decoded = decode_message(bench.schema, wire)
            verified = verified and decoded == value
        return PipelineResult(
            "RpcNIC", bench.name, times, verified,
            retransmits=retransmits, dropped=dropped,
        )

    # ------------------------------------------------------------------
    # Fig. 18b: serialization
    # ------------------------------------------------------------------
    def serialize_bench(self, bench: BenchWorkload) -> PipelineResult:
        params = self.params
        times: List[int] = []
        verified = True
        retransmits = 0
        dropped = 0
        for i, (value, wire, stats) in enumerate(
            zip(bench.values, bench.encoded, bench.stats)
        ):
            deliveries, lost = self._deliveries(f"{bench.name}:tx", i)
            retransmits += deliveries - 1
            t = (
                # CPU pre-serialization: DSA gathers every field.
                params.dsa_field_ps * stats.scalar_fields
                + params.dsa_byte_ps * stats.wire_bytes
                # MMIO doorbell announcing the prepared buffer.
                + params.mmio_doorbell_ps
                # NIC pulls the buffer over DMA.
                + params.dma_pull_fixed_ps
                + params.dma_pull_byte_ps * stats.wire_bytes
                # Hardware encode from NIC memory.
                + encode_time_ps(params, stats)
            )
            times.append(t * deliveries)
            if lost:
                dropped += 1
                continue
            encoded = encode_message(bench.schema, value)
            verified = verified and encoded == wire
        return PipelineResult(
            "RpcNIC", bench.name, times, verified,
            retransmits=retransmits, dropped=dropped,
        )


from repro.system.registry import register_component  # noqa: E402


@register_component("rpc.rpcnic")
def _build_rpcnic_pipeline(builder, system, spec) -> RpcNicPipeline:
    """Builder factory: the PCIe RpcNIC (de)serialization pipeline."""
    return RpcNicPipeline(
        system.config,
        corrupt_rate=float(spec.params.get("corrupt_rate", 0.0)),
        seed=int(spec.params.get("seed", 1234)),
        max_retransmits=int(spec.params.get("max_retransmits", 3)),
    )
