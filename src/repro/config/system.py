"""Configuration dataclasses for SimCXL.

All latency fields are integer picoseconds unless the name says
otherwise.  Device-side costs are expressed in device-clock cycles so
that frequency scaling (FPGA@400MHz -> ASIC@1.5GHz) follows the paper's
methodology: scale the cycle-denominated portion, keep host-side
nanosecond costs fixed or re-calibrate them per profile.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

CACHELINE = 64


@dataclass(frozen=True)
class DramParams:
    """DDR5 bank timing (closed-page controller policy)."""

    trcd_ps: int = 16_000
    tcl_ps: int = 16_000
    trp_ps: int = 16_000
    burst_ps: int = 1_820          # 64 B via two 32-bit subchannels at 4400 MT/s
    trfc_ps: int = 295_000         # refresh cycle time
    trefi_ps: int = 3_900_000      # refresh interval
    banks: int = 32
    row_bytes: int = 8_192
    jitter_ps: int = 4_000         # controller arbitration jitter (+/-)

    @property
    def closed_access_ps(self) -> int:
        """Activate + CAS + burst: the common closed-page access cost."""
        return self.trcd_ps + self.tcl_ps + self.burst_ps

    @property
    def row_hit_ps(self) -> int:
        return self.tcl_ps + self.burst_ps

    @property
    def row_conflict_ps(self) -> int:
        return self.trp_ps + self.closed_access_ps


@dataclass(frozen=True)
class HostParams:
    """Host-side (CPU socket) parameters, shared by all device profiles."""

    clock_ghz: float = 2.4
    cores: int = 48
    l1_size: int = 48 * 1024
    l1_ways: int = 12
    llc_size: int = 96 * 1024 * 1024
    llc_ways: int = 12
    llc_access_ps: int = 80_000        # LLC lookup + directory check
    home_ingress_ps: int = 21_000      # host ingress queue to home agent
    memif_oneway_ps: int = 39_090      # memory-interface routing, each way
    host_path_ii_ps: int = 4_260       # home-agent initiation interval
    mem_path_ii_ps: int = 4_410        # end-to-end II for LLC-miss requests
    dram: DramParams = field(default_factory=DramParams)
    mem_channels: int = 2
    dram_size: int = 32 * 1024 * 1024 * 1024


@dataclass(frozen=True)
class DeviceProfile:
    """A CXL device implementation point (FPGA@400MHz or ASIC@1.5GHz).

    The D2H load path decomposes as::

        lsu_issue -> dcoh_request -> hmc_tag --hit--> hmc_data
                                             --miss-> phy -> host ...
        ... return: phy -> dcoh_fill -> hmc_fill -> dcoh_response -> lsu_complete
    """

    name: str
    clock_period_ps: int
    lsu_issue_cycles: int
    dcoh_request_cycles: int
    hmc_tag_cycles: int
    hmc_data_cycles: int
    dcoh_fill_cycles: int
    hmc_fill_cycles: int
    dcoh_response_cycles: int
    lsu_complete_cycles: int
    phy_oneway_ps: int
    hmc_service_ii_ps: int
    hmc_size: int = 128 * 1024
    hmc_ways: int = 4
    max_outstanding: int = 256
    ncp_push_ps: int = 0  # filled by presets: phy + LLC write for NC-P

    @property
    def freq_mhz(self) -> float:
        return 1_000_000 / self.clock_period_ps

    def cycles_ps(self, n: int) -> int:
        return n * self.clock_period_ps

    @property
    def hmc_hit_ps(self) -> int:
        """Round-trip LSU latency for an HMC hit."""
        total_cycles = (
            self.lsu_issue_cycles
            + self.dcoh_request_cycles
            + self.hmc_tag_cycles
            + self.hmc_data_cycles
            + self.dcoh_response_cycles
            + self.lsu_complete_cycles
        )
        return self.cycles_ps(total_cycles)

    @property
    def pre_host_ps(self) -> int:
        """Device-side cost before a miss leaves for the host."""
        return self.cycles_ps(
            self.lsu_issue_cycles + self.dcoh_request_cycles + self.hmc_tag_cycles
        )

    @property
    def post_host_ps(self) -> int:
        """Device-side cost after the host response lands."""
        return self.cycles_ps(
            self.dcoh_fill_cycles
            + self.hmc_fill_cycles
            + self.dcoh_response_cycles
            + self.lsu_complete_cycles
        )


@dataclass(frozen=True)
class DmaParams:
    """PCIe DMA engine timing.

    One-shot transfer latency = engine setup + fixed PHY round trip +
    wire time; pipelined throughput is one descriptor every
    ``desc_ii_ps`` plus the wire time of its payload.
    """

    name: str
    clock_period_ps: int
    setup_engine_cycles: int = 546
    phy_fixed_ps: int = 800_000
    desc_ii_ps: int = 64_600
    max_payload: int = 512
    tlp_header_bytes: int = 60
    raw_link_gbps: float = 25.6
    mmio_write_ps: int = 450_000
    mmio_read_ps: int = 900_000

    @property
    def setup_ps(self) -> int:
        return self.setup_engine_cycles * self.clock_period_ps + self.phy_fixed_ps

    def wire_ps(self, size_bytes: int) -> int:
        """Time on the link for ``size_bytes`` of payload, TLP-segmented."""
        if size_bytes <= 0:
            return 0
        full, rem = divmod(size_bytes, self.max_payload)
        wire_bytes = full * (self.max_payload + self.tlp_header_bytes)
        if rem:
            wire_bytes += rem + self.tlp_header_bytes
        return round(wire_bytes / self.raw_link_gbps * 1_000)

    def transfer_ps(self, size_bytes: int) -> int:
        """One-shot DMA latency for a transfer of ``size_bytes``."""
        return self.setup_ps + self.wire_ps(size_bytes)

    def pipelined_ps(self, size_bytes: int) -> int:
        """Per-descriptor cost in a fully pipelined descriptor stream."""
        return self.desc_ii_ps + self.wire_ps(size_bytes)


@dataclass(frozen=True)
class NicRaoParams:
    """RAO offloading costs shared by the NIC designs (§V-A)."""

    request_proc_ps: int = 45_500   # RX parse + queue + TX response
    modify_ps: int = 4_000          # ALU read-modify-write
    dirty_evict_ps: int = 120_000   # GO-WritePull round for a dirty victim
    pe_access_cycles: int = 4       # PE issue/complete stages per DCOH access
    pe_count: int = 1   # fig. 17 operating point; sweep via ablation bench


@dataclass(frozen=True)
class RpcParams:
    """RPC (de)serialization pipeline costs (§V-B), ASIC-grade NIC."""

    # Common decode/encode engine.
    parse_ps: int = 150_000            # RX header + schema-table lookup
    decode_field_ps: int = 6_000
    decode_byte_ps: int = 600
    decode_nest_ps: int = 25_000
    encode_fixed_ps: int = 120_000
    encode_field_ps: int = 5_000
    encode_byte_ps: int = 400
    encode_nest_ps: int = 20_000
    # RpcNIC (PCIe) specifics.
    flush_fixed_ps: int = 500_000      # one-shot DMA flush, engine-visible
    flush_byte_ps: int = 80            # staging+wire cost exposed per byte
    dsa_field_ps: int = 45_000         # DSA copy per non-contiguous field
    dsa_byte_ps: int = 150
    mmio_doorbell_ps: int = 300_000
    dma_pull_fixed_ps: int = 500_000
    dma_pull_byte_ps: int = 150
    # CXL-NIC specifics.
    ncp_ring_update_ps: int = 20_000   # ring-buffer update via NC-P
    cxl_mem_field_ps: int = 6_000      # CPU store of one field via CXL.mem
    cxl_mem_byte_ps: int = 100
    notify_ps: int = 50_000
    cache_miss_ps: int = 217_000       # CXL.cache fetch: freshly built
                                       # objects still sit in the host LLC
    cache_hit_ps: int = 10_000         # HMC hit (ASIC)
    chase_overlap_ps: int = 70_000     # fetch front-end runs ahead of the
                                       # encoder by ~one block's encode time
    desc_overlap: int = 4              # outstanding descriptor-walk fetches
    body_overlap: int = 8              # outstanding fetches for bulk bytes


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated platform: host + device + DMA + app params."""

    name: str
    host: HostParams
    device: DeviceProfile
    dma: DmaParams
    rao: NicRaoParams = field(default_factory=NicRaoParams)
    rpc: RpcParams = field(default_factory=RpcParams)

    def replace(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, **kwargs)

    # Derived end-to-end medians; used by calibration and tests.
    @property
    def llc_hit_ps(self) -> int:
        return (
            self.device.pre_host_ps
            + 2 * self.device.phy_oneway_ps
            + self.host.home_ingress_ps
            + self.host.llc_access_ps
            + self.device.post_host_ps
        )

    @property
    def mem_hit_ps(self) -> int:
        return (
            self.llc_hit_ps
            + 2 * self.host.memif_oneway_ps
            + self.host.dram.closed_access_ps
        )


@dataclass(frozen=True)
class TestbedConfig:
    """Table I: the physical testbed the paper calibrated against."""

    linux_kernel: str = "v6.5.0"
    cpu_type: str = "Xeon Platinum 8468V"
    cpu_cores: int = 48
    dram_type: str = "DDR5 4800"
    mem_channels_per_numa: int = 2
    dram_size: str = "1TB"
    llc_size: str = "97.5MB"
    accelerators: str = "Intel Agilex I-Series FPGA"
    hmc: str = "128KB, 4 ways"
    cxl_expander: str = "Samsung memory expander"

    def rows(self) -> Dict[str, str]:
        return {
            "Linux kernel version": self.linux_kernel,
            "CPU type": self.cpu_type,
            "CPU cores": str(self.cpu_cores),
            "Local DRAM type": self.dram_type,
            "#Memory channels/NUMA": str(self.mem_channels_per_numa),
            "DDR DRAM size": self.dram_size,
            "LLC size": self.llc_size,
            "CXL&PCIe accelerators": self.accelerators,
            "HMC size": self.hmc,
            "CXL memory expander": self.cxl_expander,
        }
