"""Calibrated presets.

Every constant below is the result of fitting the path model of
:mod:`repro.config.system` against the paper's hardware measurements
(see ``repro.calibration.reference``).  The derivations:

FPGA @ 400 MHz (2500 ps/cycle)
    * HMC hit 115 ns  = 46 device cycles (4+6+8+18+6+4).
    * LLC hit 576 ns  = 45 ns device pre-host + 2x190 ns PHY + 21 ns
      ingress + 80 ns LLC/dir + 50 ns device post-host.
    * Mem hit 688 ns  = LLC hit + 2x39.09 ns mem-interface + 33.82 ns
      DDR5 closed-page access.
    * HMC-hit bandwidth 25.07 GB/s emerges from a 1-cycle HMC service
      interval; LLC-hit 14.10 GB/s from a 4.26 ns home-agent II; memory
      13.49 GB/s from a 4.41 ns LLC-miss II.
    * DMA@64B 2170 ns = 546 engine cycles + 800 ns fixed PHY + wire;
      pipelined 64B descriptors every 64.6 ns + wire -> 0.92 GB/s, and
      22.8 GB/s at 256 KB with 60 B TLP headers on a 25.6 GB/s link.

ASIC @ 1.5 GHz (667 ps/cycle)
    * HMC hit 10 ns = 15 cycles (2+2+3+4+2+2).
    * LLC hit 217 ns with a 53.33 ns ASIC PHY; mem hit 260 ns with a
      4.59 ns memory-interface hop (calibrated to the paper's
      frequency-scaled projection).
    * Bandwidth targets 90.22 / 47.41 / 46.10 GB/s give service
      intervals of 0.705 / 1.245 / 1.262 ns.
    * DMA: same 546 engine cycles at 1.5 GHz + 800 ns PHY -> 1169 ns;
      descriptor II 30.33 ns -> 1.82 GB/s at 64 B.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import (
    DeviceProfile,
    DmaParams,
    DramParams,
    HostParams,
    NicRaoParams,
    RpcParams,
    SystemConfig,
    TestbedConfig,
)

FPGA_PERIOD_PS = 2_500    # 400 MHz
ASIC_PERIOD_PS = 667      # ~1.5 GHz

FPGA_400 = DeviceProfile(
    name="CXL-FPGA@400MHz",
    clock_period_ps=FPGA_PERIOD_PS,
    lsu_issue_cycles=4,
    dcoh_request_cycles=6,
    hmc_tag_cycles=8,
    hmc_data_cycles=18,
    dcoh_fill_cycles=6,
    hmc_fill_cycles=4,
    dcoh_response_cycles=6,
    lsu_complete_cycles=4,
    phy_oneway_ps=190_000,
    hmc_service_ii_ps=2_500,
    ncp_push_ps=190_000 + 80_000,
)

ASIC_1500 = DeviceProfile(
    name="CXL-ASIC@1.5GHz",
    clock_period_ps=ASIC_PERIOD_PS,
    lsu_issue_cycles=2,
    dcoh_request_cycles=2,
    hmc_tag_cycles=3,
    hmc_data_cycles=4,
    dcoh_fill_cycles=2,
    hmc_fill_cycles=1,
    dcoh_response_cycles=2,
    lsu_complete_cycles=2,
    phy_oneway_ps=53_330,
    hmc_service_ii_ps=705,
    ncp_push_ps=53_330 + 80_000,
)

PCIE_FPGA_400 = DmaParams(
    name="PCIe-FPGA@400MHz",
    clock_period_ps=FPGA_PERIOD_PS,
    setup_engine_cycles=546,
    phy_fixed_ps=800_000,
    desc_ii_ps=64_600,
    mmio_write_ps=450_000,
    mmio_read_ps=900_000,
)

PCIE_ASIC_1500 = DmaParams(
    name="PCIe-ASIC@1.5GHz",
    clock_period_ps=ASIC_PERIOD_PS,
    setup_engine_cycles=546,
    phy_fixed_ps=800_000,
    desc_ii_ps=30_330,
    mmio_write_ps=300_000,
    mmio_read_ps=400_000,
)

_FPGA_HOST = HostParams()

_ASIC_HOST = dataclasses.replace(
    HostParams(),
    memif_oneway_ps=4_590,
    host_path_ii_ps=1_245,
    mem_path_ii_ps=1_262,
)


def fpga_system(name: str = "simcxl-fpga") -> SystemConfig:
    """SimCXL configured to match the CXL-FPGA/PCIe-FPGA testbed."""
    return SystemConfig(
        name=name,
        host=_FPGA_HOST,
        device=FPGA_400,
        dma=PCIE_FPGA_400,
        rao=NicRaoParams(),
        rpc=RpcParams(),
    )


def asic_system(name: str = "simcxl-asic") -> SystemConfig:
    """SimCXL frequency-scaled to a production-grade 1.5 GHz ASIC."""
    return SystemConfig(
        name=name,
        host=_ASIC_HOST,
        device=ASIC_1500,
        dma=PCIE_ASIC_1500,
        rao=NicRaoParams(),
        rpc=RpcParams(),
    )


#: Short profile names accepted by experiment specs (``profile=...``).
SYSTEMS = {
    "fpga": fpga_system,
    "asic": asic_system,
}


class UnknownProfileError(ValueError):
    """A profile string does not name a calibrated system preset."""


def system_by_name(profile: str) -> SystemConfig:
    """Build a :class:`SystemConfig` from a short profile name.

    Accepts the keys of :data:`SYSTEMS` (``"fpga"``/``"asic"``); used by
    the experiment orchestration layer so sweep specs can select a
    calibrated system with a plain JSON string.  This is the single
    validation point for profile strings — every experiment routes its
    ``profile`` argument through here, so an unknown name fails with a
    :class:`UnknownProfileError` listing the valid options instead of
    silently skipping a ``profile == ...`` branch somewhere downstream.
    """
    try:
        make = SYSTEMS[profile]
    except KeyError:
        raise UnknownProfileError(
            f"unknown system profile {profile!r}; valid profiles: "
            f"{', '.join(sorted(SYSTEMS))}"
        ) from None
    return make()


def testbed_table1_config() -> TestbedConfig:
    return TestbedConfig()


def simcxl_table1_config() -> dict:
    """Table I, SimCXL column."""
    return {
        "Linux kernel version": "Modified v6.12",
        "CPU type": "X86O3CPU",
        "CPU cores": "48",
        "Local DRAM type": "DDR5 4400",
        "#Memory channels/NUMA": "2",
        "DDR DRAM size": "32GB",
        "LLC size": "96MB",
        "CXL&PCIe accelerators": "CXL-&PCIe-NIC models",
        "HMC size": "128KB, 4 ways",
        "CXL memory expander": "Memory expander model",
    }


# Fig. 12: calibrated round-trip distance (ps) added to a mem-hit load
# when the target page lives on NUMA node 0..7; the CXL device hangs off
# node 7 (socket 1, SNC-4).  Values reproduce the measured medians
# 758/761/770/776/710/708/693/688 ns.
NUMA_EXTRA_PS = {
    0: 70_000,
    1: 73_000,
    2: 82_000,
    3: 88_000,
    4: 22_000,
    5: 20_000,
    6: 5_000,
    7: 0,
}
