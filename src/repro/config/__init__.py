"""System configuration dataclasses and calibrated presets."""

from repro.config.system import (
    DeviceProfile,
    DmaParams,
    DramParams,
    HostParams,
    NicRaoParams,
    RpcParams,
    SystemConfig,
    TestbedConfig,
)
from repro.config.presets import (
    ASIC_1500,
    FPGA_400,
    PCIE_ASIC_1500,
    PCIE_FPGA_400,
    SYSTEMS,
    UnknownProfileError,
    asic_system,
    fpga_system,
    simcxl_table1_config,
    system_by_name,
    testbed_table1_config,
)

__all__ = [
    "DeviceProfile",
    "DmaParams",
    "DramParams",
    "HostParams",
    "NicRaoParams",
    "RpcParams",
    "SystemConfig",
    "TestbedConfig",
    "FPGA_400",
    "ASIC_1500",
    "PCIE_FPGA_400",
    "PCIE_ASIC_1500",
    "SYSTEMS",
    "UnknownProfileError",
    "fpga_system",
    "asic_system",
    "system_by_name",
    "testbed_table1_config",
    "simcxl_table1_config",
]
