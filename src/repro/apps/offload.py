"""Generic offload evaluation: replay an access trace on both fabrics.

An accelerator kernel is, to the interconnect, a stream of cacheline
touches.  :class:`AccessTraceEngine` replays such a stream through

* a CXL type-1 device (DCOH + HMC, coherent loads/stores), and
* a PCIe device (descriptor-driven 64B DMA, ordered writes),

and reports the end-to-end time of each, the HMC hit rate, and the
speedup — the same methodology the paper's killer apps use, exposed for
any workload that can describe its memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.calibration.microbench import CxlTestbench
from repro.config.system import SystemConfig
from repro.cxl.transactions import DcohResult
from repro.system import SystemBuilder


@dataclass(frozen=True)
class Access:
    """One memory touch of the offloaded kernel."""

    addr: int
    write: bool = False


@dataclass
class OffloadComparison:
    name: str
    accesses: int
    cxl_us: float
    pcie_us: float
    hmc_hit_rate: float

    @property
    def speedup(self) -> float:
        return self.pcie_us / self.cxl_us


class AccessTraceEngine:
    """Replays an access trace on the CXL and PCIe substrates."""

    def __init__(self, config: SystemConfig, compute_ps_per_access: int = 2_000) -> None:
        self.config = config
        self.compute_ps = compute_ps_per_access

    # ------------------------------------------------------------------
    # CXL side: coherent loads/stores through the DCOH
    # ------------------------------------------------------------------
    def run_cxl(self, trace: Sequence[Access]) -> Tuple[float, float]:
        """Returns ``(elapsed_us, hmc_hit_rate)``."""
        bench = CxlTestbench(self.config)
        dcoh = bench.device.dcoh
        sim = bench.sim
        pending = list(trace)
        index = [0]
        hits = [0]

        def next_access() -> None:
            if index[0] >= len(pending):
                return
            access = pending[index[0]]
            index[0] += 1

            def done(result: DcohResult) -> None:
                if result.hmc_hit:
                    hits[0] += 1
                sim.schedule(self.compute_ps, next_access)

            if access.write:
                dcoh.write(access.addr, done)
            else:
                dcoh.read(access.addr, done)

        start = sim.now
        next_access()
        sim.run()
        elapsed_us = (sim.now - start) / 1e6
        hit_rate = hits[0] / len(pending) if pending else 0.0
        return elapsed_us, hit_rate

    # ------------------------------------------------------------------
    # PCIe side: every touch is a 64B DMA descriptor; writes are ordered
    # ------------------------------------------------------------------
    def run_pcie(self, trace: Sequence[Access]) -> float:
        system = SystemBuilder(self.config).build("pcie-dma")
        sim = system.sim
        dma = system.node("dma")
        pending = list(trace)
        index = [0]

        def next_access() -> None:
            if index[0] >= len(pending):
                return
            index[0] += 1

            def done() -> None:
                sim.schedule(self.compute_ps, next_access)

            dma.transfer(64, done)

        start = sim.now
        next_access()
        sim.run()
        return (sim.now - start) / 1e6

    def compare(self, name: str, trace: Sequence[Access]) -> OffloadComparison:
        cxl_us, hit_rate = self.run_cxl(trace)
        pcie_us = self.run_pcie(trace)
        return OffloadComparison(
            name=name,
            accesses=len(trace),
            cxl_us=cxl_us,
            pcie_us=pcie_us,
            hmc_hit_rate=hit_rate,
        )
