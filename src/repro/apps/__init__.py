"""Application studies from the paper's outlook (§VIII).

Graph processing and in-memory key-value stores are the workloads the
paper names as next beneficiaries of coherent offload: both are
dominated by fine-grained, irregular memory accesses — exactly where
CXL.cache beats descriptor-driven DMA.
"""

from repro.apps.offload import AccessTraceEngine, OffloadComparison
from repro.apps.graph import GraphWorkload, bfs_offload_study, pagerank_offload_study
from repro.apps.kvstore import KvStore, kv_offload_study

__all__ = [
    "AccessTraceEngine",
    "OffloadComparison",
    "GraphWorkload",
    "bfs_offload_study",
    "pagerank_offload_study",
    "KvStore",
    "kv_offload_study",
]
