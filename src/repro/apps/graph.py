"""Graph processing over the coherent pool (§VIII outlook).

Graph kernels are the canonical fine-grained-irregular workload: BFS
chases neighbour lists scattered across a CSR structure, PageRank
streams over edges but scatters rank updates.  Both are executed
functionally here (real BFS/PageRank over a generated graph) while the
induced cacheline trace is replayed on the CXL and PCIe substrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.apps.offload import Access, AccessTraceEngine, OffloadComparison
from repro.config.system import SystemConfig
from repro.mem.address import CACHELINE

_VERTEX_BYTES = 8          # rank / parent per vertex
_EDGE_BYTES = 8            # one neighbour id
_VERTEX_BASE = 0x1000_0000
_EDGE_BASE = 0x3000_0000


@dataclass
class GraphWorkload:
    """A graph in CSR form plus its address map."""

    graph: nx.Graph
    row_offsets: List[int]
    columns: List[int]

    @classmethod
    def generate(cls, vertices: int = 256, degree: int = 4, seed: int = 5) -> "GraphWorkload":
        graph = nx.barabasi_albert_graph(vertices, degree, seed=seed)
        row_offsets = [0]
        columns: List[int] = []
        for v in range(vertices):
            neighbours = sorted(graph.neighbors(v))
            columns.extend(neighbours)
            row_offsets.append(len(columns))
        return cls(graph, row_offsets, columns)

    @property
    def vertices(self) -> int:
        return len(self.row_offsets) - 1

    def vertex_addr(self, v: int) -> int:
        return _VERTEX_BASE + v * _VERTEX_BYTES

    def edge_addr(self, index: int) -> int:
        return _EDGE_BASE + index * _EDGE_BYTES

    def neighbours(self, v: int) -> Tuple[range, List[int]]:
        start, end = self.row_offsets[v], self.row_offsets[v + 1]
        return range(start, end), self.columns[start:end]


def bfs_trace(workload: GraphWorkload, source: int = 0) -> Tuple[List[Access], Dict[int, int]]:
    """Run BFS functionally; returns (access trace, distance map)."""
    distance = {source: 0}
    frontier = [source]
    trace: List[Access] = []
    while frontier:
        next_frontier: List[Access] = []
        new_frontier: List[int] = []
        for v in frontier:
            edge_range, neighbours = workload.neighbours(v)
            for edge_index, u in zip(edge_range, neighbours):
                trace.append(Access(workload.edge_addr(edge_index)))   # edge read
                if u not in distance:
                    distance[u] = distance[v] + 1
                    trace.append(Access(workload.vertex_addr(u), write=True))
                    new_frontier.append(u)
        frontier = new_frontier
    return trace, distance


def pagerank_trace(
    workload: GraphWorkload, iterations: int = 2
) -> Tuple[List[Access], Dict[int, float]]:
    """Run power-iteration PageRank functionally; returns (trace, ranks)."""
    n = workload.vertices
    ranks = {v: 1.0 / n for v in range(n)}
    damping = 0.85
    trace: List[Access] = []
    for _ in range(iterations):
        incoming = {v: 0.0 for v in range(n)}
        for v in range(n):
            trace.append(Access(workload.vertex_addr(v)))            # rank read
            edge_range, neighbours = workload.neighbours(v)
            if not neighbours:
                continue
            share = ranks[v] / len(neighbours)
            for edge_index, u in zip(edge_range, neighbours):
                trace.append(Access(workload.edge_addr(edge_index)))  # edge read
                incoming[u] += share
                trace.append(Access(workload.vertex_addr(u), write=True))  # scatter
        ranks = {
            v: (1 - damping) / n + damping * incoming[v] for v in range(n)
        }
    return trace, ranks


def bfs_offload_study(
    config: SystemConfig, vertices: int = 192, degree: int = 4, seed: int = 5
) -> OffloadComparison:
    """BFS correctness (vs. networkx) + offload comparison."""
    workload = GraphWorkload.generate(vertices, degree, seed)
    trace, distance = bfs_trace(workload)
    expected = nx.single_source_shortest_path_length(workload.graph, 0)
    if distance != dict(expected):
        raise AssertionError("BFS result diverged from networkx reference")
    engine = AccessTraceEngine(config)
    return engine.compare("bfs", trace)


def pagerank_offload_study(
    config: SystemConfig, vertices: int = 96, degree: int = 3, seed: int = 5
) -> OffloadComparison:
    """PageRank scatter phase offload comparison."""
    workload = GraphWorkload.generate(vertices, degree, seed)
    trace, ranks = pagerank_trace(workload)
    if abs(sum(ranks.values()) - 1.0) > 1e-6:
        raise AssertionError("PageRank mass not conserved")
    engine = AccessTraceEngine(config)
    return engine.compare("pagerank", trace)
