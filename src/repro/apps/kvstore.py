"""In-memory key-value store offload (§VIII outlook).

GET/PUT on an open-addressing hash table: every operation is a handful
of fine-grained probes at pseudo-random addresses, plus a value touch.
The store runs functionally (real inserts/lookups) while its probe
trace is replayed on the CXL and PCIe substrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.offload import Access, AccessTraceEngine, OffloadComparison
from repro.config.system import SystemConfig

_SLOT_BYTES = 64          # one bucket per cacheline: key + value pointer
_TABLE_BASE = 0x5000_0000
_VALUE_BASE = 0x7000_0000


class KvStore:
    """Open-addressing (linear probing) hash table with a trace tap."""

    def __init__(self, slots: int = 4096, value_bytes: int = 128) -> None:
        if slots & (slots - 1):
            raise ValueError("slot count must be a power of two")
        self.slots = slots
        self.value_bytes = value_bytes
        self._keys: List[Optional[str]] = [None] * slots
        self._values: Dict[str, bytes] = {}
        self.trace: List[Access] = []
        self.probes = 0

    def _slot_addr(self, slot: int) -> int:
        return _TABLE_BASE + slot * _SLOT_BYTES

    def _value_addr(self, slot: int) -> int:
        return _VALUE_BASE + slot * self.value_bytes

    def _probe(self, key: str) -> Tuple[int, bool]:
        """Linear probing; returns (slot, found)."""
        slot = hash(key) & (self.slots - 1)
        for step in range(self.slots):
            index = (slot + step) & (self.slots - 1)
            self.probes += 1
            self.trace.append(Access(self._slot_addr(index)))
            existing = self._keys[index]
            if existing is None:
                return index, False
            if existing == key:
                return index, True
        raise RuntimeError("hash table full")

    def put(self, key: str, value: bytes) -> None:
        slot, _found = self._probe(key)
        self._keys[slot] = key
        self._values[key] = value
        # Write the value body (one access per cacheline).
        for line in range(-(-len(value) // 64)):
            self.trace.append(Access(self._value_addr(slot) + line * 64, write=True))

    def get(self, key: str) -> Optional[bytes]:
        slot, found = self._probe(key)
        if not found:
            return None
        value = self._values[key]
        for line in range(-(-len(value) // 64)):
            self.trace.append(Access(self._value_addr(slot) + line * 64))
        return value

    def __len__(self) -> int:
        return len(self._values)


def kv_offload_study(
    config: SystemConfig,
    operations: int = 800,
    keys: int = 200,
    get_fraction: float = 0.8,
    seed: int = 13,
) -> OffloadComparison:
    """A GET-heavy workload (the paper's GET/PUT offload scenario)."""
    rng = random.Random(seed)
    store = KvStore()
    universe = [f"key-{i}" for i in range(keys)]
    reference: Dict[str, bytes] = {}
    # Warm the store.
    for key in universe:
        value = bytes(rng.randrange(256) for _ in range(96))
        store.put(key, value)
        reference[key] = value
    store.trace.clear()

    for _ in range(operations):
        key = rng.choice(universe)
        if rng.random() < get_fraction:
            got = store.get(key)
            if got != reference[key]:
                raise AssertionError(f"GET {key} returned wrong value")
        else:
            value = bytes(rng.randrange(256) for _ in range(96))
            store.put(key, value)
            reference[key] = value

    engine = AccessTraceEngine(config)
    return engine.compare("kvstore", store.trace)
