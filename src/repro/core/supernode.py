"""Multi-host supernodes over a CXL switch fabric (§VIII direction).

A :class:`Supernode` composes several hosts and a pool of
fabric-attached memory behind CXL switches:

* the fabric manager leases memory ranges to hosts on demand; a leased
  range shows up as a new CPU-less NUMA node in that host's registry,
  so ordinary first-touch allocation can spill into it;
* cross-host sharing goes through the two-level coherence domain
  (local agent per host, one global agent), and every global
  transaction pays the measured switch-fabric latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import HierarchicalDomain
from repro.config.system import SystemConfig
from repro.cxl.switch import CxlSwitch, SwitchFabric
from repro.kernel.fabric import FabricManager, ResourceError
from repro.kernel.numa import NodeKind, NumaNode, NumaRegistry
from repro.mem.address import AddressRange


class HostDownError(RuntimeError):
    """A coherent access targeted a host that is NAKing (marked down).

    The supernode's fail-loud path: the fault layer marks hosts
    unavailable (:meth:`Supernode.set_host_available`) and every
    coherent access against a down host raises this — degraded-mode
    callers catch it and retry-with-backoff instead.
    """


@dataclass
class SupernodeHost:
    """One child host of the supernode."""

    name: str
    numa: NumaRegistry
    leased_nodes: List[int] = field(default_factory=list)
    remote_accesses: int = 0
    remote_latency_ps: int = 0
    available: bool = True
    naks: int = 0


def make_supernode_host(config: SystemConfig, name: str) -> SupernodeHost:
    """Build one child host: a NUMA registry seeded with its local DRAM.

    This is the per-host construction unit — the ``supernode.host``
    component factory calls it for each host node of a topology, and
    :class:`Supernode` calls it when composed directly, so both paths
    produce identical hosts.
    """
    registry = NumaRegistry()
    registry.add(
        NumaNode(
            0,
            NodeKind.CPU,
            AddressRange(0, config.host.dram_size, f"{name}-dram"),
        )
    )
    return SupernodeHost(name, registry)


class Supernode:
    """Hosts + fabric-attached memory + hierarchical coherence."""

    FABRIC_BASE = 0x100_0000_0000

    def __init__(
        self,
        config: SystemConfig,
        hosts: int = 2,
        fabric_memory_bytes: int = 4 << 30,
        memory_granule: int = 1 << 30,
        switch_traversal_ps: int = 70_000,
        prebuilt_hosts: Optional[List[SupernodeHost]] = None,
        root_ports: int = 8,
    ) -> None:
        if prebuilt_hosts is not None:
            host_list = list(prebuilt_hosts)
            names = [host.name for host in host_list]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate supernode host names: {names}")
        else:
            if hosts <= 0:
                raise ValueError("a supernode needs at least one host")
            host_list = [make_supernode_host(config, f"host{i}") for i in range(hosts)]
        if not host_list:
            raise ValueError("a supernode needs at least one host")
        self.config = config
        self.fabric = SwitchFabric()
        root = self.fabric.add_switch(
            CxlSwitch("root", switch_traversal_ps, ports=root_ports)
        )
        self.manager = FabricManager("supernode-fm")

        self.hosts: Dict[str, SupernodeHost] = {}
        for i, host in enumerate(host_list):
            leaf = self.fabric.add_switch(CxlSwitch(f"leaf{i}", switch_traversal_ps))
            root.attach_switch(leaf)
            leaf.attach_endpoint(host.name)
            self.hosts[host.name] = host

        # Carve the fabric-attached memory pool into leasable granules.
        cursor = self.FABRIC_BASE
        index = 0
        while cursor + memory_granule <= self.FABRIC_BASE + fabric_memory_bytes:
            region = AddressRange(cursor, cursor + memory_granule, f"fam{index}")
            self.manager.add_memory(f"fam{index}", region)
            root.attach_endpoint(f"fam{index}")
            cursor += memory_granule
            index += 1

        self.domain = HierarchicalDomain(children=len(host_list))
        self._child_of = {
            host.name: f"child{i}" for i, host in enumerate(host_list)
        }

    @classmethod
    def from_hosts(
        cls,
        config: SystemConfig,
        hosts: List[SupernodeHost],
        fabric_memory_bytes: int = 4 << 30,
        memory_granule: int = 1 << 30,
        switch_traversal_ps: int = 70_000,
        root_ports: int = 8,
    ) -> "Supernode":
        """Wire a supernode around hosts that were built individually.

        The system-builder path: each ``supernode.host`` topology node
        becomes a :class:`SupernodeHost` via :func:`make_supernode_host`,
        and the ``supernode.fabric`` node assembles them — instead of
        this class fabricating its own hosts wholesale.
        """
        return cls(
            config,
            fabric_memory_bytes=fabric_memory_bytes,
            memory_granule=memory_granule,
            switch_traversal_ps=switch_traversal_ps,
            prebuilt_hosts=hosts,
            root_ports=root_ports,
        )

    # ------------------------------------------------------------------
    # Memory leasing
    # ------------------------------------------------------------------
    def lease_memory(self, host: str, min_bytes: int) -> int:
        """Lease a fabric granule to ``host``; returns the new node id."""
        entry = self.hosts[host]
        resource = self.manager.allocate_memory(host, min_bytes)
        node_id = max(n.node_id for n in entry.numa.nodes) + 1
        entry.numa.add(
            NumaNode(node_id, NodeKind.MEMORY_ONLY, resource.region, resource.name)
        )
        entry.leased_nodes.append(node_id)
        return node_id

    def release_memory(self, host: str, node_id: int) -> None:
        entry = self.hosts[host]
        if node_id not in entry.leased_nodes:
            raise ResourceError(f"{host} holds no lease on node {node_id}")
        node = entry.numa.node(node_id)
        if node.allocated_frames:
            raise ResourceError(
                f"node {node_id} still has {node.allocated_frames} frames allocated"
            )
        self.manager.release(node.name)
        entry.leased_nodes.remove(node_id)

    def total_capacity_bytes(self, host: str) -> int:
        return sum(n.region.size for n in self.hosts[host].numa.nodes)

    # ------------------------------------------------------------------
    # Cross-host coherent access
    # ------------------------------------------------------------------
    def set_host_available(self, host: str, available: bool) -> None:
        """Mark a host up/down; down hosts NAK coherent accesses.

        The hook the fault layer drives
        (:meth:`repro.faults.controller.FaultController.apply_supernode`)
        — the supernode itself stays fault-agnostic.
        """
        self.hosts[host].available = available

    def coherent_access(self, host: str, addr: int, exclusive: bool = False) -> int:
        """One access from ``host``; returns the fabric latency paid (ps).

        Local-agent hits are free of fabric traffic; misses consult the
        global agent at the root switch.  A host marked unavailable
        NAKs: the access raises :class:`HostDownError` (and counts
        against the host) without touching the coherence domain.
        """
        entry = self.hosts[host]
        if not entry.available:
            entry.naks += 1
            raise HostDownError(
                f"supernode host {host!r} is down: coherent access NAKed "
                f"({entry.naks} so far)"
            )
        child = self._child_of[host]
        local_hit = self.domain.access(child, addr, exclusive)
        if local_hit:
            return 0
        latency = 2 * self.fabric.latency_ps(host, self._any_fabric_endpoint())
        entry.remote_accesses += 1
        entry.remote_latency_ps += latency
        return latency

    def _any_fabric_endpoint(self) -> str:
        for name in self.fabric.switch("root").endpoints:
            return name
        # No fabric memory: route to another host's leaf instead.
        hosts = sorted(self.hosts)
        return hosts[-1]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization(self) -> Dict[str, List[str]]:
        return {host: self.manager.holdings(host) for host in self.hosts}

    @property
    def free_fabric_bytes(self) -> int:
        return self.manager.free_memory_bytes


from repro.system.registry import register_component  # noqa: E402


@register_component("supernode.host")
def _build_supernode_host(builder, system, spec) -> SupernodeHost:
    """Builder factory: one child host, constructed per-host.

    If the ``supernode.fabric`` node was declared (and therefore built)
    earlier, resolve against its already-wired hosts; otherwise build a
    fresh :class:`SupernodeHost` that the fabric factory will collect.
    """
    for fabric_spec in system.topology.by_kind("supernode.fabric"):
        fabric = system.nodes.get(fabric_spec.name)
        if isinstance(fabric, Supernode):
            try:
                return fabric.hosts[spec.name]
            except KeyError:
                raise ValueError(
                    f"supernode host nodes must be named host0..host"
                    f"{len(fabric.hosts) - 1}; got {spec.name!r}"
                ) from None
    return make_supernode_host(system.config, spec.name)


@register_component("supernode.fabric")
def _build_supernode_fabric(builder, system, spec) -> Supernode:
    """Builder factory: the switch fabric wired around per-host systems.

    Collects every ``supernode.host`` node — the ones declared before
    this spec were already built individually by the host factory; any
    declared after are built here and back-filled — and wires one
    :class:`Supernode` around them via :meth:`Supernode.from_hosts`.
    Host nodes must be named ``host0..hostN-1`` (the
    :func:`repro.system.topology.supernode_topology` convention, which
    the fabric's leaf-switch indexing relies on).
    """
    host_specs = system.topology.by_kind("supernode.host")
    if not host_specs:
        raise ValueError(
            f"topology {system.topology.name!r}: supernode.fabric needs "
            "at least one supernode.host node"
        )
    expected = {f"host{i}" for i in range(len(host_specs))}
    for host_spec in host_specs:
        if host_spec.name not in expected:
            raise ValueError(
                f"supernode host nodes must be named host0..host{len(host_specs) - 1}; "
                f"got {host_spec.name!r}"
            )
    hosts: List[SupernodeHost] = []
    # Leaf switches attach in name order (host0 -> leaf0, ...) no matter
    # how the topology interleaves its declarations.
    for name in sorted(expected, key=lambda n: int(n[len("host"):])):
        host = system.nodes.get(name)
        if not isinstance(host, SupernodeHost):
            host = make_supernode_host(system.config, name)
            system.nodes[name] = host  # fabric declared first: back-fill
        hosts.append(host)
    return Supernode.from_hosts(
        system.config,
        hosts,
        fabric_memory_bytes=int(spec.params.get("fabric_memory_bytes", 4 << 30)),
        memory_granule=int(spec.params.get("memory_granule", 1 << 30)),
        switch_traversal_ps=int(spec.params.get("switch_traversal_ps", 70_000)),
        root_ports=int(spec.params.get("root_ports", 8)),
    )
