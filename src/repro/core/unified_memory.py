"""Unified coherent memory: plain ``malloc``/``mmap`` for every thread.

A :class:`CohetProcess` owns one unified page table.  ``malloc``
allocates virtual pages without frames (so memory can be overcommitted
beyond physical capacity); the first touch — from a CPU *or* an XPU —
faults the page in near the accessor (§III-C.2).  Data is stored
functionally per page so examples can run real computations through
the same addresses the timing model sees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernel.hmm import Hmm
from repro.kernel.page_table import PAGE_SIZE, PageFault, UnifiedPageTable, vpn_of


class AllocationError(RuntimeError):
    pass


class CohetProcess:
    """One user process with malloc/mmap over the coherent pool."""

    _VA_BASE = 0x0000_7000_0000_0000

    def __init__(self, hmm: Hmm, pid: int = 1, default_node: int = 0) -> None:
        self.hmm = hmm
        self.page_table = hmm.page_table
        self.pid = pid
        self.default_node = default_node
        self._brk = self._VA_BASE
        self._allocations: Dict[int, int] = {}   # vaddr -> size
        self._page_data: Dict[int, bytearray] = {}
        self.mallocs = 0
        self.frees = 0

    # ------------------------------------------------------------------
    # Allocation interface (the Fig. 4(c) programming model)
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Standard malloc: reserve pages, no physical frames yet."""
        if size <= 0:
            raise AllocationError("malloc size must be positive")
        pages = -(-size // PAGE_SIZE)
        vaddr = self._brk
        self._brk += pages * PAGE_SIZE
        for i in range(pages):
            self.page_table.map(vaddr + i * PAGE_SIZE)
        self._allocations[vaddr] = pages * PAGE_SIZE
        self.mallocs += 1
        return vaddr

    def mmap(self, size: int) -> int:
        """mmap(MAP_ANONYMOUS): identical placement semantics here."""
        return self.malloc(size)

    def free(self, vaddr: int) -> None:
        size = self._allocations.pop(vaddr, None)
        if size is None:
            raise AllocationError(f"free of unallocated pointer {vaddr:#x}")
        for offset in range(0, size, PAGE_SIZE):
            self.hmm.release_page(vaddr + offset)
            self._page_data.pop(vpn_of(vaddr + offset), None)
        self.frees += 1

    def allocation_size(self, vaddr: int) -> int:
        return self._allocations[vaddr]

    # ------------------------------------------------------------------
    # Access: every load/store goes through HMM first-touch placement
    # ------------------------------------------------------------------
    def _page(self, vaddr: int, accessor_node: int, write: bool) -> bytearray:
        self.hmm.touch(vaddr, accessor_node, write=write)
        vpn = vpn_of(vaddr)
        page = self._page_data.get(vpn)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._page_data[vpn] = page
        return page

    def write_bytes(self, vaddr: int, data: bytes, accessor_node: Optional[int] = None) -> None:
        node = self.default_node if accessor_node is None else accessor_node
        offset = 0
        while offset < len(data):
            addr = vaddr + offset
            page = self._page(addr, node, write=True)
            start = addr % PAGE_SIZE
            chunk = min(PAGE_SIZE - start, len(data) - offset)
            page[start : start + chunk] = data[offset : offset + chunk]
            offset += chunk

    def read_bytes(self, vaddr: int, size: int, accessor_node: Optional[int] = None) -> bytes:
        node = self.default_node if accessor_node is None else accessor_node
        out = bytearray()
        offset = 0
        while offset < size:
            addr = vaddr + offset
            page = self._page(addr, node, write=False)
            start = addr % PAGE_SIZE
            chunk = min(PAGE_SIZE - start, size - offset)
            out += page[start : start + chunk]
            offset += chunk
        return bytes(out)

    # ------------------------------------------------------------------
    # Typed helpers for numeric examples
    # ------------------------------------------------------------------
    def store_array(self, vaddr: int, array: np.ndarray, accessor_node: Optional[int] = None) -> None:
        self.write_bytes(vaddr, array.tobytes(), accessor_node)

    def load_array(
        self,
        vaddr: int,
        dtype,
        count: int,
        accessor_node: Optional[int] = None,
    ) -> np.ndarray:
        itemsize = np.dtype(dtype).itemsize
        raw = self.read_bytes(vaddr, count * itemsize, accessor_node)
        return np.frombuffer(raw, dtype=dtype).copy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        return self.page_table.resident_bytes()

    def mapped_bytes(self) -> int:
        return self.page_table.mapped_bytes()

    def placement(self, vaddr: int, size: int) -> Dict[int, int]:
        """Bytes of this allocation resident per NUMA node."""
        out: Dict[int, int] = {}
        for offset in range(0, size, PAGE_SIZE):
            entry = self.page_table.lookup(vaddr + offset)
            if entry is not None and entry.present:
                out[entry.node] = out.get(entry.node, 0) + PAGE_SIZE
        return out
