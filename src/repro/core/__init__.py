"""Cohet core: the coherent heterogeneous computing framework."""

from repro.core.unified_memory import CohetProcess
from repro.core.runtime import CommandQueue, ComputeDevice, Kernel, KernelEvent
from repro.core.cohet import CohetSystem, DeviceSpec
from repro.core.supernode import Supernode

__all__ = [
    "CohetProcess",
    "CommandQueue",
    "ComputeDevice",
    "Kernel",
    "KernelEvent",
    "CohetSystem",
    "DeviceSpec",
    "Supernode",
]
