"""OpenCL-flavoured runtime for Cohet (§III-C.3).

Cohet keeps OpenCL's execution surface (command queues, ND-range kernel
launches, ``finish``) but drops the special memory-allocation APIs:
kernels dereference ordinary ``malloc`` pointers because the hardware
keeps CPU and XPU coherent.  Kernels here are Python callables invoked
per work-item with a :class:`KernelContext` exposing the process memory
through the accessor's NUMA node, so first-touch placement behaves as
it would on real Cohet hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.unified_memory import CohetProcess


@dataclass
class ComputeDevice:
    """A compute pool member: the CPU pool or one XPU."""

    name: str
    numa_node: int
    is_xpu: bool
    work_item_ps: int = 2_000   # modeled cost per work-item

    def __str__(self) -> str:
        kind = "XPU" if self.is_xpu else "CPU"
        return f"{kind}({self.name}, node {self.numa_node})"


@dataclass
class Kernel:
    """A kernel: ``func(ctx, index, *args)`` invoked per work-item."""

    name: str
    func: Callable[..., None]


class KernelContext:
    """What a running kernel sees: memory routed via its device's node."""

    def __init__(self, process: CohetProcess, device: ComputeDevice) -> None:
        self.process = process
        self.device = device

    def load_array(self, vaddr: int, dtype, count: int):
        return self.process.load_array(vaddr, dtype, count, accessor_node=self.device.numa_node)

    def store_array(self, vaddr: int, array) -> None:
        self.process.store_array(vaddr, array, accessor_node=self.device.numa_node)

    def read_bytes(self, vaddr: int, size: int) -> bytes:
        return self.process.read_bytes(vaddr, size, accessor_node=self.device.numa_node)

    def write_bytes(self, vaddr: int, data: bytes) -> None:
        self.process.write_bytes(vaddr, data, accessor_node=self.device.numa_node)


@dataclass
class KernelEvent:
    """Completion record, OpenCL-event style."""

    kernel: str
    device: str
    global_size: int
    queued_ps: int
    start_ps: int
    end_ps: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


class CommandQueue:
    """An in-order command queue bound to one compute device."""

    def __init__(self, process: CohetProcess, device: ComputeDevice) -> None:
        self.process = process
        self.device = device
        self._pending: List[Tuple[Kernel, int, tuple]] = []
        self.events: List[KernelEvent] = []
        self._clock_ps = 0

    def enqueue_nd_range_kernel(self, kernel: Kernel, global_size: int, *args: Any) -> None:
        """clEnqueueNDRangeKernel: queue ``global_size`` work-items."""
        if global_size <= 0:
            raise ValueError("global_size must be positive")
        self._pending.append((kernel, global_size, args))

    def enqueue_task(self, kernel: Kernel, *args: Any) -> None:
        """Single work-item convenience (clEnqueueTask)."""
        self.enqueue_nd_range_kernel(kernel, 1, *args)

    def finish(self) -> List[KernelEvent]:
        """clFinish: run every queued kernel to completion, in order."""
        completed = []
        while self._pending:
            kernel, global_size, args = self._pending.pop(0)
            ctx = KernelContext(self.process, self.device)
            queued = self._clock_ps
            start = queued
            for index in range(global_size):
                kernel.func(ctx, index, *args)
            end = start + global_size * self.device.work_item_ps
            self._clock_ps = end
            event = KernelEvent(
                kernel=kernel.name,
                device=self.device.name,
                global_size=global_size,
                queued_ps=queued,
                start_ps=start,
                end_ps=end,
            )
            self.events.append(event)
            completed.append(event)
        return completed

    @property
    def idle(self) -> bool:
        return not self._pending
