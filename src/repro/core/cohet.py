"""CohetSystem: assemble a full coherent heterogeneous platform.

Builds the Fig. 3 stack bottom-up: simulated hardware (host memory +
LLC home agent + CXL devices over Flex Bus), the OS level (NUMA init,
unified page table, IOMMU, HMM, drivers), and the user level (process
with malloc/mmap, compute devices, command queues).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.llc import SharedLLC
from repro.config.system import SystemConfig
from repro.core.runtime import CommandQueue, ComputeDevice
from repro.core.unified_memory import CohetProcess
from repro.cxl.device import DeviceType, Type1Device, Type2Device, Type3Device
from repro.cxl.io import enumerate_devices
from repro.kernel.driver import XpuDriver
from repro.kernel.fabric import FabricManager
from repro.kernel.hmm import Hmm
from repro.kernel.ats import Iommu
from repro.kernel.numa import NodeKind, NumaRegistry, numa_init
from repro.kernel.page_table import UnifiedPageTable
from repro.mem.address import AddressRange, split_evenly
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.sim.engine import Simulator


@dataclass
class DeviceSpec:
    """Request for one CXL device in the system."""

    name: str
    device_type: DeviceType
    hdm_bytes: int = 0   # device memory for type-2/3


class CohetSystem:
    """A booted Cohet platform."""

    HOST_BASE = 0x0
    HDM_BASE = 0x8_0000_0000  # device windows start at 32 GB

    def __init__(
        self,
        config: SystemConfig,
        host_nodes: int = 1,
        devices: Sequence[DeviceSpec] = (),
        host_bytes: Optional[int] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator()

        # ---------------- hardware: host memory + home agent ----------
        host_bytes = host_bytes or config.host.dram_size
        self.host_region = AddressRange(self.HOST_BASE, host_bytes, "host-dram")
        self.memif = MemoryInterface(config.host.memif_oneway_ps)
        self.host_controller = MemoryController(
            config.host.dram,
            channels=config.host.mem_channels,
            ii_ps=0,
        )
        self.memif.attach("host", self.host_region, self.host_controller)
        self.llc = SharedLLC(self.sim, config.host, self.memif)

        # ---------------- hardware: CXL devices -----------------------
        self.devices: Dict[str, object] = {}
        xpu_regions: List[AddressRange] = []
        expander_regions: List[AddressRange] = []
        cursor = self.HDM_BASE
        for spec in devices:
            if spec.device_type is DeviceType.TYPE1:
                device = Type1Device(self.sim, config.device, self.llc, name=spec.name)
            else:
                if spec.hdm_bytes <= 0:
                    raise ValueError(f"{spec.name}: type-2/3 devices need hdm_bytes")
                hdm = AddressRange(cursor, cursor + spec.hdm_bytes, f"{spec.name}-hdm")
                cursor = hdm.end
                if spec.device_type is DeviceType.TYPE2:
                    xpu_regions.append(hdm)
                    device = Type2Device(
                        self.sim, config.device, config.host, self.llc, self.memif,
                        hdm, name=spec.name,
                    )
                else:
                    expander_regions.append(hdm)
                    device = Type3Device(
                        self.sim, config.device, config.host, self.memif,
                        hdm, name=spec.name,
                    )
            self.devices[spec.name] = device

        # BIOS: enumerate config spaces, size BARs, map MMIO windows.
        slots = [
            (0, slot, dev.config_space)
            for slot, dev in enumerate(self.devices.values())
        ]
        self.enumerated = {
            name: entry
            for name, entry in zip(self.devices, enumerate_devices(slots))
        }

        # ---------------- OS level ------------------------------------
        host_ranges = split_evenly(self.host_region, host_nodes)
        self.numa: NumaRegistry = numa_init(host_ranges, xpu_regions, expander_regions)
        self.page_table = UnifiedPageTable(pid=1)
        self.iommu = Iommu(self.page_table)
        self.hmm = Hmm(self.page_table, self.numa, self.iommu)
        self.fabric = FabricManager()

        self.drivers: Dict[str, XpuDriver] = {}
        xpu_nodes = [n.node_id for n in self.numa.by_kind(NodeKind.XPU)]
        xpu_cursor = 0
        for name, device in self.devices.items():
            memory_node = None
            if getattr(device, "device_type", None) is DeviceType.TYPE2:
                memory_node = xpu_nodes[xpu_cursor]
                xpu_cursor += 1
            driver = XpuDriver(device, self.enumerated[name], self.hmm, memory_node)
            driver.open()
            driver.mmap_bar(0)
            self.drivers[name] = driver
            self.fabric.add_xpu(name, config.device.name)
            self.fabric.allocate_xpu("host0")

        # ---------------- user level ----------------------------------
        cpu_node = self.numa.by_kind(NodeKind.CPU)[0].node_id
        self.process = CohetProcess(self.hmm, pid=1, default_node=cpu_node)
        self.cpu_device = ComputeDevice("cpu-pool", cpu_node, is_xpu=False)
        self.compute_devices: Dict[str, ComputeDevice] = {"cpu": self.cpu_device}
        for name, driver in self.drivers.items():
            node = driver.memory_node if driver.memory_node is not None else cpu_node
            self.compute_devices[name] = ComputeDevice(name, node, is_xpu=True)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def queue(self, device_name: str = "cpu") -> CommandQueue:
        """Create a command queue on the named compute device."""
        device = self.compute_devices[device_name]
        return CommandQueue(self.process, device)

    def device(self, name: str):
        return self.devices[name]

    def driver(self, name: str) -> XpuDriver:
        return self.drivers[name]

    @classmethod
    def build_default(cls, config: SystemConfig) -> "CohetSystem":
        """One host node, one type-2 XPU with 1 GB of device memory."""
        return cls(
            config,
            host_nodes=1,
            devices=[DeviceSpec("xpu0", DeviceType.TYPE2, hdm_bytes=1 << 30)],
        )
