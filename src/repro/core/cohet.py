"""CohetSystem: assemble a full coherent heterogeneous platform.

Builds the Fig. 3 stack bottom-up: simulated hardware (host memory +
LLC home agent + CXL devices over Flex Bus) through the declarative
:mod:`repro.system` construction layer, then the OS level (NUMA init,
unified page table, IOMMU, HMM, drivers), and the user level (process
with malloc/mmap, compute devices, command queues).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.system import SystemConfig
from repro.core.runtime import CommandQueue, ComputeDevice
from repro.core.unified_memory import CohetProcess
from repro.cxl.device import DeviceType
from repro.cxl.io import enumerate_devices
from repro.kernel.driver import XpuDriver
from repro.kernel.fabric import FabricManager
from repro.kernel.hmm import Hmm
from repro.kernel.ats import Iommu
from repro.kernel.numa import NodeKind, NumaRegistry, numa_init
from repro.kernel.page_table import UnifiedPageTable
from repro.mem.address import AddressRange, split_evenly
from repro.system import LinkSpec, NodeSpec, SystemBuilder, Topology, topology_by_name

#: Component kind registered for each CXL device type.
DEVICE_KINDS: Dict[DeviceType, str] = {
    DeviceType.TYPE1: "cxl.type1",
    DeviceType.TYPE2: "cxl.type2",
    DeviceType.TYPE3: "cxl.type3",
}

_KIND_TYPES: Dict[str, DeviceType] = {v: k for k, v in DEVICE_KINDS.items()}


@dataclass
class DeviceSpec:
    """Request for one CXL device in the system."""

    name: str
    device_type: DeviceType
    hdm_bytes: int = 0   # device memory for type-2/3


class CohetSystem:
    """A booted Cohet platform."""

    HOST_BASE = 0x0
    HDM_BASE = 0x8_0000_0000  # device windows start at 32 GB

    def __init__(
        self,
        config: SystemConfig,
        host_nodes: int = 1,
        devices: Sequence[DeviceSpec] = (),
        host_bytes: Optional[int] = None,
    ) -> None:
        self.config = config

        # ---------------- hardware: built from the topology -----------
        host_bytes = host_bytes or config.host.dram_size
        self.topology = self._hardware_topology(devices, host_bytes)
        built = SystemBuilder(config).build(self.topology)
        self.built = built
        self.sim = built.sim
        self.host_region = built.host_region
        self.memif = built.memif
        self.host_controller = built.host_controller
        self.llc = built.llc

        self.devices: Dict[str, object] = {
            spec.name: built.node(spec.name) for spec in devices
        }
        xpu_regions: List[AddressRange] = [
            built.node(s.name).hdm for s in devices
            if s.device_type is DeviceType.TYPE2
        ]
        expander_regions: List[AddressRange] = [
            built.node(s.name).hdm for s in devices
            if s.device_type is DeviceType.TYPE3
        ]

        # BIOS: enumerate config spaces, size BARs, map MMIO windows.
        slots = [
            (0, slot, dev.config_space)
            for slot, dev in enumerate(self.devices.values())
        ]
        self.enumerated = {
            name: entry
            for name, entry in zip(self.devices, enumerate_devices(slots))
        }

        # ---------------- OS level ------------------------------------
        host_ranges = split_evenly(self.host_region, host_nodes)
        self.numa: NumaRegistry = numa_init(host_ranges, xpu_regions, expander_regions)
        self.page_table = UnifiedPageTable(pid=1)
        self.iommu = Iommu(self.page_table)
        self.hmm = Hmm(self.page_table, self.numa, self.iommu)
        self.fabric = FabricManager()

        self.drivers: Dict[str, XpuDriver] = {}
        xpu_nodes = [n.node_id for n in self.numa.by_kind(NodeKind.XPU)]
        xpu_cursor = 0
        for name, device in self.devices.items():
            memory_node = None
            if getattr(device, "device_type", None) is DeviceType.TYPE2:
                memory_node = xpu_nodes[xpu_cursor]
                xpu_cursor += 1
            driver = XpuDriver(device, self.enumerated[name], self.hmm, memory_node)
            driver.open()
            driver.mmap_bar(0)
            self.drivers[name] = driver
            self.fabric.add_xpu(name, config.device.name)
            self.fabric.allocate_xpu("host0")

        # ---------------- user level ----------------------------------
        cpu_node = self.numa.by_kind(NodeKind.CPU)[0].node_id
        self.process = CohetProcess(self.hmm, pid=1, default_node=cpu_node)
        self.cpu_device = ComputeDevice("cpu-pool", cpu_node, is_xpu=False)
        self.compute_devices: Dict[str, ComputeDevice] = {"cpu": self.cpu_device}
        for name, driver in self.drivers.items():
            node = driver.memory_node if driver.memory_node is not None else cpu_node
            self.compute_devices[name] = ComputeDevice(name, node, is_xpu=True)

    # ------------------------------------------------------------------
    # Topology plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _hardware_topology(
        devices: Sequence[DeviceSpec], host_bytes: int
    ) -> Topology:
        """Translate :class:`DeviceSpec` requests into a builder topology."""
        nodes = [NodeSpec("host", "host", {"size": host_bytes})]
        links = []
        for spec in devices:
            params = (
                {"hdm_bytes": spec.hdm_bytes}
                if spec.device_type is not DeviceType.TYPE1
                else {}
            )
            nodes.append(NodeSpec(spec.name, DEVICE_KINDS[spec.device_type], params))
            links.append(LinkSpec(spec.name, "host", "cxl.flexbus"))
        return Topology(
            name="cohet", nodes=tuple(nodes), links=tuple(links)
        )

    @staticmethod
    def device_specs_from_topology(topology: Topology) -> List[DeviceSpec]:
        """The :class:`DeviceSpec` list encoded by a topology's device nodes."""
        specs = []
        for node in topology.nodes:
            device_type = _KIND_TYPES.get(node.kind)
            if device_type is None:
                continue
            specs.append(
                DeviceSpec(
                    node.name,
                    device_type,
                    hdm_bytes=int(node.params.get("hdm_bytes", 0)),
                )
            )
        return specs

    @classmethod
    def from_topology(
        cls,
        config: SystemConfig,
        topology: Topology,
        host_nodes: int = 1,
    ) -> "CohetSystem":
        """Boot a Cohet platform whose hardware is described by ``topology``.

        The topology's ``host`` node may carry a ``size`` param
        (``None`` means the configured DRAM size); every ``cxl.type*``
        node becomes one device.
        """
        host_bytes: Optional[int] = None
        for node in topology.nodes:
            if node.kind == "host":
                size = node.params.get("size")
                host_bytes = None if size is None else int(size)
        return cls(
            config,
            host_nodes=host_nodes,
            devices=cls.device_specs_from_topology(topology),
            host_bytes=host_bytes,
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def queue(self, device_name: str = "cpu") -> CommandQueue:
        """Create a command queue on the named compute device."""
        device = self.compute_devices[device_name]
        return CommandQueue(self.process, device)

    def device(self, name: str):
        return self.devices[name]

    def driver(self, name: str) -> XpuDriver:
        return self.drivers[name]

    @classmethod
    def build_default(cls, config: SystemConfig) -> "CohetSystem":
        """One host node, one type-2 XPU with 1 GB of device memory.

        Thin wrapper over the registered ``"cohet-default"`` topology.
        """
        return cls.from_topology(config, topology_by_name("cohet-default"))
