"""Performance benchmark harness for the simulator core (``repro bench``).

Runs a fixed set of hot-path workloads — a raw event-calendar drain, a
cancellation-heavy drain, a cache-array access mix, an end-to-end RPC
comparison, and the ``quick`` sweep preset — and reports wall-clock
time and events-per-second for each.  ``repro bench`` writes the
payload to ``BENCH_engine.json`` so the performance trajectory can be
tracked PR-over-PR (compare the same machine only; absolute numbers are
not portable).

Workloads are deterministic: address and delay streams come from a
seeded ``random.Random``, so two runs on the same interpreter execute
identical event sequences and differences in the report are pure
wall-clock noise.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import __version__
from repro.cache.array import CacheArray
from repro.cache.block import MesiState
from repro.sim.engine import Simulator

DEFAULT_OUT = "BENCH_engine.json"

Progress = Optional[Callable[[str], None]]


def _timed(fn: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
    start = time.perf_counter()
    payload = fn()
    payload["wall_s"] = round(time.perf_counter() - start, 6)
    return payload


def bench_engine_drain(events: int = 300_000, chains: int = 64, seed: int = 7) -> Dict[str, Any]:
    """Drain ``events`` events from ``chains`` self-rescheduling timers.

    Exercises the tuple-heap calendar, the entry free-list and the
    trusted fast path; no component or cache logic in the loop.
    """
    rng = random.Random(seed)
    sim = Simulator()
    budget = events
    counter = [0]

    def tick(delay: int) -> None:
        counter[0] += 1
        if counter[0] < budget:
            sim.schedule_after(delay, tick, (1 + (delay * 1103515245 + 12345) % 997,))

    def run() -> Dict[str, Any]:
        for _ in range(chains):
            sim.schedule_after(rng.randrange(1, 1000), tick, (rng.randrange(1, 997),))
        sim.run()
        return {"events": sim.executed}

    result = _timed(run)
    result["events_per_sec"] = round(result["events"] / max(result["wall_s"], 1e-9))
    return result


def bench_engine_cancel(events: int = 100_000, seed: int = 11) -> Dict[str, Any]:
    """Schedule/cancel churn: half the calendar is lazily deleted.

    Exercises :meth:`Event.cancel`, the cancel counter and heap
    compaction.
    """
    rng = random.Random(seed)
    sim = Simulator()
    fired = [0]

    def noop() -> None:
        fired[0] += 1

    def run() -> Dict[str, Any]:
        handles = []
        for i in range(events):
            handles.append(sim.schedule(rng.randrange(1, 1_000_000), noop))
            if i % 2:
                handles[rng.randrange(0, len(handles))].cancel()
        sim.run()
        return {"events": sim.executed, "scheduled": events}

    result = _timed(run)
    result["events_per_sec"] = round(result["events"] / max(result["wall_s"], 1e-9))
    return result


def bench_obs_overhead(
    events: int = 200_000,
    chains: int = 64,
    seed: int = 23,
    threshold: float = 0.02,
) -> Dict[str, Any]:
    """Pin the disabled-instrumentation overhead of the obs layer.

    Times the same deterministic event drain twice: once registry-free,
    once with a :class:`~repro.obs.metrics.MetricsRegistry` attached as
    pull-based probes (no snapshots inside the timed region — exactly
    the disabled-instrumentation configuration every normal run uses).
    The two regions execute identical hot-loop instructions by design,
    so any measured gap is either noise or a regression of the
    zero-overhead-when-off contract.

    Raises ``RuntimeError`` when the observed run is more than
    ``threshold`` (2%) slower across the minimum of several interleaved
    rounds — interleaving plus min-of-rounds makes the comparison
    robust to scheduler noise, and extra rounds are granted before
    failing so a single noisy burst cannot break the perf gate.
    """
    from repro.obs.metrics import MetricsRegistry

    def make_sim() -> Simulator:
        rng = random.Random(seed)
        sim = Simulator()
        counter = [0]

        def tick(delay: int) -> None:
            counter[0] += 1
            if counter[0] < events:
                sim.schedule_after(
                    delay, tick, (1 + (delay * 1103515245 + 12345) % 997,)
                )

        for _ in range(chains):
            sim.schedule_after(rng.randrange(1, 1000), tick, (rng.randrange(1, 997),))
        return sim

    def drain_plain() -> float:
        sim = make_sim()
        start = time.perf_counter()
        sim.run()
        return time.perf_counter() - start

    def drain_observed() -> float:
        sim = make_sim()
        registry = MetricsRegistry("bench")
        registry.probe("engine.events", lambda: sim.executed)
        registry.probe("engine.pending", lambda: sim.pending)
        registry.probe("engine.now_ps", lambda: sim.now)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        # Observation happens outside the timed region, as in real runs
        # with instrumentation attached but snapshots idle.
        registry.snapshot(sim.now)
        return elapsed

    min_rounds, max_rounds = 3, 12
    # The two regions run identical instructions, so sub-millisecond
    # gaps are timer/scheduler noise, not a contract regression — the
    # absolute slack keeps short quick-scale drains from flaking under
    # a loaded machine where 2% of the wall time is microseconds.
    abs_slack_s = 0.002

    def run() -> Dict[str, Any]:
        best_plain = best_observed = float("inf")
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            # Interleave so slow system-wide phases hit both regions.
            best_plain = min(best_plain, drain_plain())
            best_observed = min(best_observed, drain_observed())
            overhead = (best_observed - best_plain) / best_plain
            if rounds >= min_rounds and (
                overhead <= threshold
                or best_observed - best_plain <= abs_slack_s
            ):
                break
        overhead = (best_observed - best_plain) / best_plain
        if overhead > threshold and best_observed - best_plain > abs_slack_s:
            raise RuntimeError(
                f"disabled-instrumentation overhead {overhead:.1%} exceeds "
                f"{threshold:.0%} (plain {best_plain:.4f}s vs observed "
                f"{best_observed:.4f}s over {rounds} rounds) — the obs "
                f"layer's zero-overhead-when-off contract regressed"
            )
        return {
            "events": events,
            "rounds": rounds,
            "plain_s": round(best_plain, 6),
            "observed_s": round(best_observed, 6),
            "overhead_frac": round(overhead, 4),
            "events_per_sec": round(events / max(best_plain, 1e-9)),
        }

    return _timed(run)


def bench_cache_array(ops: int = 300_000, seed: int = 13) -> Dict[str, Any]:
    """Mixed lookup/insert stream against an L1-sized array.

    Exercises shift-and-mask indexing, lazy set creation and LRU
    eviction under a working set ~4x the array capacity.
    """
    rng = random.Random(seed)
    array = CacheArray(size=48 * 1024, ways=12, name="bench-l1")
    lines = (48 * 1024 // 64) * 4
    addrs = [rng.randrange(0, lines) * 64 for _ in range(8192)]

    def run() -> Dict[str, Any]:
        n = len(addrs)
        for i in range(ops):
            addr = addrs[i % n]
            if array.lookup(addr) is None:
                array.insert(addr, MesiState.EXCLUSIVE)
        return {"ops": ops, "hit_rate": round(array.hit_rate, 4)}

    result = _timed(run)
    result["ops_per_sec"] = round(result["ops"] / max(result["wall_s"], 1e-9))
    return result


def bench_rpc(messages: int = 30) -> Dict[str, Any]:
    """One HyperProtoBench bench through all four RPC designs.

    End-to-end workload: CXL device, DCOH/HMC, LLC home agent and DRAM
    behind the discrete-event core.
    """
    from repro.config import fpga_system
    from repro.rpc.harness import run_rpc_comparison

    def run() -> Dict[str, Any]:
        comparisons = run_rpc_comparison(
            fpga_system(), benches=("Bench0",), messages=messages
        )
        comparison = comparisons["Bench0"]
        return {
            "messages": messages,
            "deser_speedup": round(comparison.deser_speedup, 4),
        }

    return _timed(run)


def bench_system_build(builds: int = 1000) -> Dict[str, Any]:
    """Construct the ``fanout-2`` system repeatedly via SystemBuilder.

    Tracks the cost of the declarative construction layer itself —
    topology instantiation, registry dispatch, host complex + two
    type-1 devices with LSUs — which sits on every harness's setup
    path.
    """
    from repro.config import fpga_system
    from repro.system import SystemBuilder

    config = fpga_system()

    def run() -> Dict[str, Any]:
        builder = SystemBuilder(config)
        nodes = 0
        for _ in range(builds):
            nodes += len(builder.build("fanout-2").nodes)
        return {"builds": builds, "nodes": nodes}

    result = _timed(run)
    result["builds_per_sec"] = round(result["builds"] / max(result["wall_s"], 1e-9))
    return result


def bench_topology_load(loads: int = 200) -> Dict[str, Any]:
    """Dump ``fanout-2`` to JSON once, then load+validate+build it in a loop.

    Tracks the data-driven construction path — JSON parse, schema
    validation, registry dispatch — that every file-based topology
    (``examples/topologies/``, ``repro topology load``) pays on top of
    the in-memory build measured by ``system_build``.
    """
    from repro.config import fpga_system
    from repro.system import (
        SystemBuilder,
        dump_topology,
        load_topology,
        topology_by_name,
    )

    config = fpga_system()

    def run() -> Dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            path = Path(tmp) / "fanout-2.json"
            dump_topology(topology_by_name("fanout-2"), path)
            builder = SystemBuilder(config)
            nodes = 0
            for _ in range(loads):
                nodes += len(builder.build(load_topology(path)).nodes)
        return {"loads": loads, "nodes": nodes}

    result = _timed(run)
    result["loads_per_sec"] = round(result["loads"] / max(result["wall_s"], 1e-9))
    return result


def bench_workload_gen(ops: int = 100_000, seed: int = 17) -> Dict[str, Any]:
    """Expand the built-in generators until ``ops`` operations exist.

    Tracks the workload layer's stream-generation throughput — ref
    parsing, registry dispatch, seeded expansion (including the Zipf
    CDF build and a phase composition) — which sits on the setup path
    of every workload-driven experiment and trace recording.
    """
    from repro.workloads import resolve_workload

    refs = (
        "sequential(4096)",
        "zipf(4096,1.2)",
        "pointer-chase(4096,512)",
        "rw-mix(4096,0.7)",
        "mixed(1024)",
    )

    def run() -> Dict[str, Any]:
        produced = 0
        rounds = 0
        while produced < ops:
            workload = resolve_workload(refs[rounds % len(refs)])
            produced += len(workload.ops(seed + rounds))
            rounds += 1
        return {"ops": produced, "rounds": rounds}

    result = _timed(run)
    result["ops_per_sec"] = round(result["ops"] / max(result["wall_s"], 1e-9))
    return result


def bench_parallel_supernode(
    ops: int = 200_000, hosts: int = 4, jobs: int = 4, seed: int = 5
) -> Dict[str, Any]:
    """Windowed supernode run: serial lanes vs forked workers.

    A 4-host supernode with a long fabric crossing (so each conservative
    window holds thousands of ops per lane) driven by a read-heavy
    uniform stream.  The serial and parallel measurements are asserted
    bit-identical in-line — the parity contract — and ``speedup`` is
    parallel wall-clock over serial (expect >= 2x at ``jobs >= 4`` on a
    machine with that many cores; on fewer cores the number reports the
    process overhead instead).  ``events_per_sec`` is the gated
    throughput of the serial windowed model, which is stable across
    core counts.
    """
    from repro.config import system_by_name
    from repro.system.topology import supernode_topology
    from repro.workloads import WorkloadDriver

    topology = supernode_topology(hosts, switch_traversal_ps=100_000_000)
    driver = WorkloadDriver(system_by_name("asic"))
    workload = f"uniform({ops},2048)"

    def run() -> Dict[str, Any]:
        start = time.perf_counter()
        serial = driver.run(
            workload, topology=topology, seed=seed, streams=hosts,
            sim_parallel=1,
        )
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = driver.run(
            workload, topology=topology, seed=seed, streams=hosts,
            sim_parallel=jobs,
        )
        parallel_s = time.perf_counter() - start
        if serial.to_dict() != parallel.to_dict():
            raise RuntimeError(
                "windowed serial and parallel measurements diverged — "
                "the conservative-sync parity contract is broken"
            )
        return {
            "ops": ops,
            "hosts": hosts,
            "jobs": jobs,
            "serial_s": round(serial_s, 6),
            "parallel_s": round(parallel_s, 6),
            "speedup": round(serial_s / max(parallel_s, 1e-9), 3),
            "events_per_sec": round(ops / max(serial_s, 1e-9)),
        }

    return _timed(run)


def bench_workload_batch(ops: int = 200_000, seed: int = 19) -> Dict[str, Any]:
    """Vectorized workload hot paths vs their scalar equivalents.

    Measures columnar generation (``OpBatch`` expansion) against
    materializing the scalar op list, and the bulk
    :meth:`CacheArray.lookup_many` probe against a scalar ``lookup``
    loop over the same address column — asserting the aggregate hit
    counts agree.  ``ops_per_sec`` (the gated key) is the batch
    generation throughput.
    """
    from repro.workloads import resolve_workload

    workload = resolve_workload(f"uniform({ops},4096)")

    def run() -> Dict[str, Any]:
        start = time.perf_counter()
        batch = workload.batch(seed)
        batch_s = time.perf_counter() - start
        start = time.perf_counter()
        scalar_ops = batch.to_ops()
        scalar_s = time.perf_counter() - start

        array = CacheArray(size=48 * 1024, ways=12, name="bench-bulk")
        for addr in batch.addrs[: array.size // 64].tolist():
            array.insert(addr, MesiState.SHARED)
        probe = CacheArray(size=48 * 1024, ways=12, name="bench-scalar")
        for addr in batch.addrs[: probe.size // 64].tolist():
            probe.insert(addr, MesiState.SHARED)

        start = time.perf_counter()
        bulk_hits = array.lookup_many(batch.addrs)
        bulk_s = time.perf_counter() - start
        start = time.perf_counter()
        scalar_hits = sum(
            1 for addr in batch.addrs.tolist()
            if probe.lookup(addr) is not None
        )
        loop_s = time.perf_counter() - start
        if bulk_hits != scalar_hits or (array.hits, array.misses) != (
            probe.hits, probe.misses
        ):
            raise RuntimeError(
                "lookup_many disagrees with the scalar lookup loop"
            )
        return {
            "ops": len(scalar_ops),
            "batch_gen_s": round(batch_s, 6),
            "scalar_gen_s": round(scalar_s, 6),
            "gen_speedup": round(scalar_s / max(batch_s, 1e-9), 3),
            "bulk_probe_s": round(bulk_s, 6),
            "scalar_probe_s": round(loop_s, 6),
            "probe_speedup": round(loop_s / max(bulk_s, 1e-9), 3),
            "hit_rate": round(bulk_hits / max(len(scalar_ops), 1), 4),
            "ops_per_sec": round(ops / max(batch_s, 1e-9)),
            "probe_ops_per_sec": round(ops / max(bulk_s, 1e-9)),
        }

    return _timed(run)


def bench_result_store(records: int = 20_000) -> Dict[str, Any]:
    """Sharded store throughput: locked appends, then streaming reads.

    Appends ``records`` small results through the per-shard-locked
    write path with a small roll-over cap (so several shards exist),
    appends the same count again through the batched
    :meth:`ResultStore.append_many` path (one lock acquire + one write
    per drained batch — the queue worker's path), then aggregates with
    ``ok_hashes()`` (index fast path) and ``latest()`` (streaming
    record scan) — the exact paths a million-point sweep leans on.
    """
    from repro.experiments.store import ResultStore, StoredResult

    def make(i: int) -> "StoredResult":
        return StoredResult(
            spec_hash=f"h{i % 1000:05d}", experiment="bench",
            params={}, repeat=0, seed=i, status="ok",
            series={"v": float(i)},
        )

    def run() -> Dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            store = ResultStore(tmp, shard_max_bytes=256 * 1024)
            append_start = time.perf_counter()
            for i in range(records):
                store.append(make(i))
            append_s = time.perf_counter() - append_start
            scan_start = time.perf_counter()
            distinct = len(store.latest())
            ok = len(store.ok_hashes())
            scan_s = time.perf_counter() - scan_start
            shards = len(store.shard_paths())
        batch_size = 64
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            batched = ResultStore(tmp, shard_max_bytes=256 * 1024)
            batch_start = time.perf_counter()
            for base in range(0, records, batch_size):
                batched.append_many(
                    [make(i) for i in range(base, min(base + batch_size, records))]
                )
            batch_s = time.perf_counter() - batch_start
        return {
            "records": records,
            "shards": shards,
            "distinct": distinct,
            "ok": ok,
            "append_s": round(append_s, 6),
            "scan_s": round(scan_s, 6),
            "appends_per_sec": round(records / max(append_s, 1e-9)),
            "batched_append_s": round(batch_s, 6),
            "batched_appends_per_sec": round(records / max(batch_s, 1e-9)),
            "batch_speedup": round(append_s / max(batch_s, 1e-9), 3),
        }

    return _timed(run)


def bench_sweep(jobs: int = 1) -> Dict[str, Any]:
    """The ``quick`` sweep preset end-to-end (the acceptance workload).

    Runs into a throwaway directory with the result cache disabled so
    every spec executes.  This is the number to compare PR-over-PR.
    """
    from repro.experiments import preset_sweep, run_sweep

    sweep = preset_sweep("quick")

    def run() -> Dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            outcome = run_sweep(sweep, Path(tmp) / "quick", jobs=jobs, force=True)
        if outcome.failed:
            raise RuntimeError(f"bench sweep had failures: {outcome.failed}")
        return {"specs": outcome.total, "jobs": jobs}

    return _timed(run)


#: Measurement repetitions per gated workload — each runs ``BEST_OF``
#: times and the fastest attempt is recorded.  Workloads are
#: deterministic, so the fastest run is the one least disturbed by
#: scheduler noise; without this, quick-size runs on a busy machine
#: swing far past the perf-gate threshold on wall-clock noise alone.
BEST_OF = 3


def _best_of(fn: Callable[[], Dict[str, Any]], key: str, runs: int = BEST_OF) -> Dict[str, Any]:
    """Run ``fn`` ``runs`` times, keep the attempt with the best ``key``."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(runs, 1)):
        result = fn()
        if best is None or result[key] > best[key]:
            best = result
    assert best is not None
    return best


def run_bench(quick: bool = False, progress: Progress = None) -> Dict[str, Any]:
    """Run every workload; returns the JSON-ready payload.

    ``quick`` shrinks workload sizes for CI smoke runs.  Gated
    workloads (those reporting ``*_per_sec`` keys) record the best of
    :data:`BEST_OF` attempts so the perf gate compares peak throughput,
    not scheduler noise.
    """

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    scale = 0.1 if quick else 1.0
    workloads: Dict[str, Dict[str, Any]] = {}

    note("engine_drain ...")
    workloads["engine_drain"] = _best_of(
        lambda: bench_engine_drain(events=int(300_000 * scale) or 1),
        "events_per_sec",
    )
    note(f"engine_drain: {workloads['engine_drain']['events_per_sec']:,} events/s")

    note("engine_cancel ...")
    workloads["engine_cancel"] = _best_of(
        lambda: bench_engine_cancel(events=int(100_000 * scale) or 1),
        "events_per_sec",
    )
    note(f"engine_cancel: {workloads['engine_cancel']['events_per_sec']:,} events/s")

    note("obs_overhead ...")
    # Already internally best-of-N (interleaved rounds); no _best_of.
    # Floored so the timed region stays long enough for the overhead
    # ratio to be meaningful at quick scale.
    workloads["obs_overhead"] = bench_obs_overhead(
        events=max(int(200_000 * scale), 50_000)
    )
    note(
        f"obs_overhead: {workloads['obs_overhead']['overhead_frac']:+.1%} "
        f"({workloads['obs_overhead']['events_per_sec']:,} events/s)"
    )

    note("cache_array ...")
    workloads["cache_array"] = _best_of(
        lambda: bench_cache_array(ops=int(300_000 * scale) or 1),
        "ops_per_sec",
    )
    note(f"cache_array: {workloads['cache_array']['ops_per_sec']:,} ops/s")

    note("rpc ...")
    workloads["rpc"] = bench_rpc(messages=10 if quick else 30)
    note(f"rpc: {workloads['rpc']['wall_s']:.3f}s")

    note("system_build ...")
    workloads["system_build"] = _best_of(
        # Enough builds that the gate measures work, not timer noise.
        lambda: bench_system_build(builds=250 if quick else 1000),
        "builds_per_sec",
    )
    note(f"system_build: {workloads['system_build']['builds_per_sec']:,} builds/s")

    note("topology_load ...")
    workloads["topology_load"] = _best_of(
        lambda: bench_topology_load(loads=60 if quick else 200),
        "loads_per_sec",
    )
    note(f"topology_load: {workloads['topology_load']['loads_per_sec']:,} loads/s")

    note("workload_gen ...")
    workloads["workload_gen"] = _best_of(
        lambda: bench_workload_gen(ops=int(100_000 * scale) or 1),
        "ops_per_sec",
    )
    note(f"workload_gen: {workloads['workload_gen']['ops_per_sec']:,} ops/s")

    note("workload_batch ...")
    workloads["workload_batch"] = _best_of(
        lambda: bench_workload_batch(ops=int(200_000 * scale) or 1),
        "ops_per_sec",
    )
    note(f"workload_batch: {workloads['workload_batch']['ops_per_sec']:,} ops/s")

    note("result_store ...")
    workloads["result_store"] = _best_of(
        lambda: bench_result_store(records=int(20_000 * scale) or 1),
        "appends_per_sec",
    )
    note(f"result_store: {workloads['result_store']['appends_per_sec']:,} appends/s")

    note("parallel_supernode ...")
    workloads["parallel_supernode"] = _best_of(
        lambda: bench_parallel_supernode(ops=int(200_000 * scale) or 4),
        "events_per_sec",
    )
    note(
        f"parallel_supernode: "
        f"{workloads['parallel_supernode']['events_per_sec']:,} events/s "
        f"(speedup {workloads['parallel_supernode']['speedup']:.2f}x)"
    )

    note("sweep_quick ...")
    workloads["sweep_quick"] = bench_sweep()
    note(f"sweep_quick: {workloads['sweep_quick']['wall_s']:.3f}s")

    from repro.cache.mesi import fast_mode

    return {
        "schema": 2,
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "quick": quick,
        "mesi_fast_mode": fast_mode(),
        "machine": machine_metadata(),
        "workloads": workloads,
    }


def machine_metadata() -> Dict[str, Any]:
    """CPU/jobs identity recorded with every payload.

    Perf-gate comparisons are apples-to-apples only between machines
    with the same shape; :func:`check_regression` refuses to gate when
    these fields differ.
    """
    from repro.experiments.runner import default_jobs

    return {
        "cpu_count": os.cpu_count() or 1,
        "jobs": default_jobs(),
        "platform": platform.platform(),
    }


#: Default throughput-regression threshold for ``repro bench --check``.
CHECK_THRESHOLD = 0.15


def machine_mismatch(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Optional[str]:
    """Why these two payloads cannot be perf-gated against each other.

    Returns ``None`` when the comparison is valid, else a one-line
    explanation (missing metadata, differing CPU shape, differing
    quick/full sizes).
    """
    cur = current.get("machine")
    base = baseline.get("machine")
    if not isinstance(base, dict) or not isinstance(cur, dict):
        return "baseline or current payload has no machine metadata"
    for key in ("cpu_count", "jobs"):
        if cur.get(key) != base.get(key):
            return (
                f"machine {key} differs: baseline {base.get(key)!r} vs "
                f"current {cur.get(key)!r}"
            )
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        return (
            f"workload sizes differ: baseline "
            f"{'quick' if baseline.get('quick') else 'full'} vs current "
            f"{'quick' if current.get('quick') else 'full'}"
        )
    return None


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = CHECK_THRESHOLD,
) -> Dict[str, Any]:
    """Compare every ``*_per_sec`` key of ``current`` against ``baseline``.

    Returns ``{"compared": [...], "regressions": [...]}`` where each
    entry is ``(workload, key, baseline, current, delta)`` and a
    regression is a throughput drop of more than ``threshold``
    (fractional).  Workloads/keys present on only one side are ignored,
    so the gate survives bench additions.
    """
    compared: List[Tuple[str, str, float, float, float]] = []
    regressions: List[Tuple[str, str, float, float, float]] = []
    for name, base_w in baseline.get("workloads", {}).items():
        cur_w = current.get("workloads", {}).get(name)
        if not isinstance(cur_w, dict) or not isinstance(base_w, dict):
            continue
        for key, base_v in base_w.items():
            if not key.endswith("_per_sec"):
                continue
            cur_v = cur_w.get(key)
            if not isinstance(base_v, (int, float)) or base_v <= 0:
                continue
            if not isinstance(cur_v, (int, float)):
                continue
            delta = (cur_v - base_v) / base_v
            entry = (name, key, float(base_v), float(cur_v), delta)
            compared.append(entry)
            if delta < -threshold:
                regressions.append(entry)
    return {"compared": compared, "regressions": regressions}


def render_check(outcome: Dict[str, Any], threshold: float = CHECK_THRESHOLD) -> str:
    """Human-readable gate verdict for ``repro bench --check``."""
    lines = [
        f"perf gate: {len(outcome['compared'])} throughput keys compared "
        f"(threshold -{threshold:.0%})"
    ]
    for name, key, base_v, cur_v, delta in outcome["compared"]:
        marker = "REGRESSION" if (name, key, base_v, cur_v, delta) in (
            outcome["regressions"]
        ) else "ok"
        lines.append(
            f"  {marker:<10} {name}.{key}: {base_v:,.0f} -> {cur_v:,.0f} "
            f"({delta:+.1%})"
        )
    if outcome["regressions"]:
        lines.append(
            f"FAIL: {len(outcome['regressions'])} key(s) regressed more "
            f"than {threshold:.0%}"
        )
    else:
        lines.append("PASS: no throughput regression beyond the threshold")
    return "\n".join(lines)


def write_bench(payload: Dict[str, Any], path: Union[str, Path] = DEFAULT_OUT) -> Path:
    """Write ``payload`` to ``path`` (default ``BENCH_engine.json``)."""
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def render(payload: Dict[str, Any]) -> str:
    """Human-readable summary table of a bench payload."""
    lines = [
        f"repro bench (version {payload['repro_version']},"
        f" python {payload['python']},"
        f" {'quick' if payload['quick'] else 'full'} sizes)",
        f"{'workload':<16} {'wall s':>10} {'throughput':>20}",
    ]
    for name, w in payload["workloads"].items():
        if "events_per_sec" in w:
            throughput = f"{w['events_per_sec']:,} events/s"
        elif "ops_per_sec" in w:
            throughput = f"{w['ops_per_sec']:,} ops/s"
        elif "builds_per_sec" in w:
            throughput = f"{w['builds_per_sec']:,} builds/s"
        elif "loads_per_sec" in w:
            throughput = f"{w['loads_per_sec']:,} loads/s"
        elif "appends_per_sec" in w:
            throughput = f"{w['appends_per_sec']:,} appends/s"
        else:
            throughput = "-"
        lines.append(f"{name:<16} {w['wall_s']:>10.3f} {throughput:>20}")
    return "\n".join(lines)
