"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro run fig17
    python -m repro run all --out results.txt
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from repro import __version__
from repro.harness.experiments import EXPERIMENTS, run_experiment


def _cmd_list(_args: argparse.Namespace, out: IO[str]) -> int:
    out.write("available experiments:\n")
    for name in EXPERIMENTS:
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        out.write(f"  {name:<9} {doc}\n")
    return 0


def _cmd_run(args: argparse.Namespace, out: IO[str]) -> int:
    names: List[str] = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        out.write(f"unknown experiment(s): {', '.join(unknown)}\n")
        out.write(f"options: {', '.join(EXPERIMENTS)} or 'all'\n")
        return 2
    for name in names:
        result = run_experiment(name)
        out.write(result.text)
        out.write("\n\n")
    return 0


def _cmd_info(_args: argparse.Namespace, out: IO[str]) -> int:
    from repro.config import asic_system, fpga_system

    out.write(f"repro {__version__} — Cohet/SimCXL reproduction\n\n")
    for make in (fpga_system, asic_system):
        config = make()
        out.write(f"profile {config.name}:\n")
        out.write(f"  device        : {config.device.name}"
                  f" ({config.device.freq_mhz:.0f} MHz)\n")
        out.write(f"  HMC           : {config.device.hmc_size // 1024} KB,"
                  f" {config.device.hmc_ways}-way\n")
        out.write(f"  HMC hit       : {config.device.hmc_hit_ps / 1000:.1f} ns\n")
        out.write(f"  LLC hit       : {config.llc_hit_ps / 1000:.1f} ns\n")
        out.write(f"  mem hit       : {config.mem_hit_ps / 1000:.1f} ns\n")
        out.write(f"  DMA 64B       : {config.dma.transfer_ps(64) / 1000:.1f} ns\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cohet/SimCXL reproduction: regenerate the paper's tables and figures",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--out", help="write results to this file instead of stdout")

    sub.add_parser("info", help="show calibrated profile summaries")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sink: IO[str] = sys.stdout
    close_sink = False
    if getattr(args, "out", None):
        sink = open(args.out, "w")
        close_sink = True
    try:
        if args.command == "list":
            return _cmd_list(args, sink)
        if args.command == "run":
            return _cmd_run(args, sink)
        if args.command == "info":
            return _cmd_info(args, sink)
        raise AssertionError(f"unhandled command {args.command}")
    finally:
        if close_sink:
            sink.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
