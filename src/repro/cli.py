"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro run fig13 fig15
    python -m repro run all --out results.txt
    python -m repro run --list
    python -m repro info
    python -m repro topology list
    python -m repro topology show fanout-4
    python -m repro topology dump fanout-2 --out fanout2.json
    python -m repro topology load fanout2.json
    python -m repro topology validate examples/topologies/*.json
    python -m repro workload list
    python -m repro workload show "zipf(256,1.2)"
    python -m repro workload record mixed --seed 7 --out mixed.jsonl
    python -m repro workload replay mixed.jsonl --topology fanout-2
    python -m repro fault list
    python -m repro fault show storm
    python -m repro fault validate examples/faults/*.json
    python -m repro sweep --preset quick --jobs 4
    python -m repro sweep parallel-parity --sim-parallel auto
    python -m repro sweep fault-tolerance --backend serial
    python -m repro sweep --preset quick --backend queue --max-retries 4
    python -m repro sweep topology-scale --jobs 2
    python -m repro sweep my_sweep.json --out runs/mine
    python -m repro sweep --preset quick --backend queue --jobs 2
    python -m repro worker runs/quick
    python -m repro status runs/quick
    python -m repro status runs/quick --watch 2
    python -m repro timeline runs/quick --out trace.json
    python -m repro run fig13 --profile
    python -m repro sweep --preset quick --profile
    python -m repro report runs/quick
    python -m repro compare runs/a runs/b
    python -m repro sweep significance --repeats 10 --out runs/sig
    python -m repro analyze runs/sig --html runs/sig/report.html
    python -m repro bench --quick
    python -m repro bench --quick --check --baseline benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from repro import __version__
from repro.harness.experiments import (
    EXPERIMENTS,
    PAPER_EXPERIMENT_IDS,
    run_experiment,
)


def _write_experiment_listing(out: IO[str]) -> None:
    width = max(len(name) for name in EXPERIMENTS)
    out.write("available experiments:\n")
    for name in EXPERIMENTS:
        doc = ((EXPERIMENTS[name].__doc__ or "").strip().splitlines() or [""])[0]
        out.write(f"  {name:<{width}}  {doc}\n")


def _cmd_list(_args: argparse.Namespace, out: IO[str]) -> int:
    _write_experiment_listing(out)
    return 0


def _cmd_run(args: argparse.Namespace, out: IO[str]) -> int:
    if args.list:
        _write_experiment_listing(out)
        return 0
    if not args.experiments:
        sys.stdout.write("run needs experiment id(s), 'all', or --list\n")
        return 2
    names: List[str] = []
    for name in args.experiments:
        if name == "all":
            # 'all' is the paper set; extension experiments run by id.
            names.extend(PAPER_EXPERIMENT_IDS)
        else:
            names.append(name)
    names = list(dict.fromkeys(names))  # 'fig13 all' runs fig13 once
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        # Diagnostics go to the terminal, never into an --out file.
        sys.stdout.write(f"unknown experiment(s): {', '.join(unknown)}\n")
        sys.stdout.write(
            f"options: {', '.join(EXPERIMENTS)} or 'all' "
            "(see 'repro run --list' for descriptions)\n"
        )
        return 2
    if args.profile:
        from repro.obs import profile

        with profile() as profiler:
            for name in names:
                result = run_experiment(name)
                out.write(result.text)
                out.write("\n\n")
        out.write(profiler.render())
        out.write("\n")
        return 0
    for name in names:
        result = run_experiment(name)
        out.write(result.text)
        out.write("\n\n")
    return 0


def _cmd_topology(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.system import (
        TopologySchemaError,
        dump_topology,
        load_topology,
        topology_by_name,
        topology_description,
        topology_names,
    )

    if args.out and args.action != "dump":
        out.write("--out is only valid with 'repro topology dump'\n")
        return 2
    if args.action == "list":
        names = topology_names()
        width = max(len(name) for name in names)
        out.write("registered topologies:\n")
        for name in names:
            out.write(f"  {name:<{width}}  {topology_description(name)}\n")
        return 0
    if args.action == "validate":
        if not args.names:
            out.write("topology validate needs one or more JSON spec files\n")
            return 2
        failures = 0
        for raw in args.names:
            try:
                topology = load_topology(raw)
            except TopologySchemaError as exc:
                out.write(f"FAIL {raw}: {exc}\n")
                failures += 1
            else:
                out.write(
                    f"ok   {raw}: {topology.name} "
                    f"({len(topology.nodes)} nodes, {len(topology.links)} links)\n"
                )
        return 2 if failures else 0
    if args.action == "load":
        if len(args.names) != 1:
            out.write("topology load needs exactly one JSON spec file\n")
            return 2
        try:
            topology = load_topology(args.names[0])
        except TopologySchemaError as exc:
            out.write(f"{exc}\n")
            return 2
        out.write(topology.describe())
        out.write("\n")
        return 0
    # show / dump take one registered name.
    if len(args.names) != 1:
        out.write(
            f"topology {args.action} needs a name (see 'repro topology list')\n"
        )
        return 2
    try:
        topology = topology_by_name(args.names[0])
    except ValueError as exc:
        out.write(f"{exc}\n")
        return 2
    if args.action == "dump":
        text = dump_topology(topology, args.out)
        if args.out:
            out.write(f"wrote {args.out}\n")
        else:
            out.write(text)
        return 0
    out.write(topology.describe())
    out.write("\n")
    return 0


def _cmd_workload(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.config import system_by_name
    from repro.workloads import (
        UnknownWorkloadError,
        WorkloadDriver,
        WorkloadDriverError,
        WorkloadSchemaError,
        dump_trace,
        load_trace,
        resolve_workload,
        workload_description,
        workload_names,
    )

    if args.action == "list":
        names = workload_names()
        width = max(len(name) for name in names)
        out.write("registered workloads:\n")
        for name in names:
            out.write(f"  {name:<{width}}  {workload_description(name)}\n")
        return 0
    if args.action == "show":
        if len(args.names) != 1:
            out.write("workload show needs a name or reference "
                      "(see 'repro workload list')\n")
            return 2
        try:
            workload = resolve_workload(args.names[0])
        except (UnknownWorkloadError, WorkloadSchemaError, ValueError) as exc:
            out.write(f"{exc}\n")
            return 2
        out.write(workload.describe(seed=args.seed))
        out.write("\n")
        return 0
    if args.action == "record":
        if len(args.names) != 1:
            out.write("workload record needs a name or reference\n")
            return 2
        if not args.out:
            out.write("workload record needs --out TRACE.jsonl\n")
            return 2
        try:
            workload = resolve_workload(args.names[0])
            text = dump_trace(workload, seed=args.seed, path=args.out)
        except (UnknownWorkloadError, WorkloadSchemaError, ValueError) as exc:
            out.write(f"{exc}\n")
            return 2
        ops = len(text.splitlines()) - 1
        out.write(f"wrote {args.out}: {workload.name}, seed {args.seed}, "
                  f"{ops} ops\n")
        return 0
    # replay: drive a recorded trace (or a live reference) through a system.
    if len(args.names) != 1:
        out.write("workload replay needs a trace file (or workload reference)\n")
        return 2
    source = args.names[0]
    # Anything path-shaped (a .jsonl suffix or a directory separator)
    # is a trace file, so a mistyped path reports "cannot read trace"
    # instead of being misparsed as a workload reference.
    path = Path(source)
    is_trace = path.is_file() or path.suffix == ".jsonl" or len(path.parts) > 1
    try:
        if is_trace:
            workload = load_trace(source)
        else:
            workload = resolve_workload(source)
        driver = WorkloadDriver(system_by_name(args.profile))
        measurement = driver.run(
            workload,
            topology=args.topology,
            seed=args.seed,
            streams=args.streams,
        )
    except (UnknownWorkloadError, WorkloadSchemaError, WorkloadDriverError,
            ValueError) as exc:
        out.write(f"{exc}\n")
        return 2
    out.write(measurement.render())
    out.write("\n")
    return 0


def _cmd_fault(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.faults import (
        FaultSchemaError,
        UnknownFaultPlanError,
        fault_plan_description,
        fault_plan_names,
        load_fault_plan,
        resolve_fault_plan,
    )

    if args.action == "list":
        names = fault_plan_names()
        width = max(len(name) for name in names)
        out.write("registered fault plans:\n")
        for name in names:
            out.write(f"  {name:<{width}}  {fault_plan_description(name)}\n")
        return 0
    if args.action == "validate":
        if not args.names:
            out.write("fault validate needs one or more JSON plan files\n")
            return 2
        failures = 0
        for raw in args.names:
            try:
                plan = load_fault_plan(raw)
            except FaultSchemaError as exc:
                out.write(f"FAIL {raw}: {exc}\n")
                failures += 1
            else:
                out.write(
                    f"ok   {raw}: {plan.name} ({len(plan.events)} events)\n"
                )
        return 2 if failures else 0
    # show: one registered name/reference, or a JSON plan file.
    if len(args.names) != 1:
        out.write("fault show needs a name or reference "
                  "(see 'repro fault list')\n")
        return 2
    source = args.names[0]
    try:
        if Path(source).is_file():
            plan = load_fault_plan(source)
        else:
            plan = resolve_fault_plan(source)
    except (UnknownFaultPlanError, FaultSchemaError, ValueError) as exc:
        out.write(f"{exc}\n")
        return 2
    out.write(plan.describe())
    out.write("\n")
    return 0


def _cmd_info(_args: argparse.Namespace, out: IO[str]) -> int:
    from repro.config import asic_system, fpga_system

    out.write(f"repro {__version__} — Cohet/SimCXL reproduction\n\n")
    for make in (fpga_system, asic_system):
        config = make()
        out.write(f"profile {config.name}:\n")
        out.write(f"  device        : {config.device.name}"
                  f" ({config.device.freq_mhz:.0f} MHz)\n")
        out.write(f"  HMC           : {config.device.hmc_size // 1024} KB,"
                  f" {config.device.hmc_ways}-way\n")
        out.write(f"  HMC hit       : {config.device.hmc_hit_ps / 1000:.1f} ns\n")
        out.write(f"  LLC hit       : {config.llc_hit_ps / 1000:.1f} ns\n")
        out.write(f"  mem hit       : {config.mem_hit_ps / 1000:.1f} ns\n")
        out.write(f"  DMA 64B       : {config.dma.transfer_ps(64) / 1000:.1f} ns\n")
    return 0


def _cmd_sweep(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.experiments import (
        PRESETS,
        SpecError,
        SweepSpec,
        preset_sweep,
        run_sweep,
    )
    from repro.experiments.exec import LockHeldError

    if bool(args.spec) == bool(args.preset):
        out.write("sweep needs exactly one of: a spec file, or --preset NAME\n")
        out.write(f"presets: {', '.join(sorted(PRESETS))}\n")
        return 2
    backend = args.backend
    retry_flags = (
        args.max_retries is not None or args.retry_backoff_s is not None
    )
    if retry_flags:
        if args.max_retries is not None and args.max_retries < 0:
            out.write(f"--max-retries must be >= 0, got {args.max_retries}\n")
            return 2
        if args.retry_backoff_s is not None and args.retry_backoff_s < 0:
            out.write(
                f"--retry-backoff-s must be >= 0, got {args.retry_backoff_s:g}\n"
            )
            return 2
        if args.backend not in (None, "queue"):
            out.write(
                "--max-retries/--retry-backoff-s require the durable work "
                f"queue (--backend queue), not {args.backend!r}\n"
            )
            return 2
        from repro.experiments.exec import QueueBackend

        # max_attempts counts the first try; N retries = N+1 attempts.
        backend = QueueBackend(
            max_attempts=(
                args.max_retries + 1 if args.max_retries is not None else 3
            ),
            backoff_s=(
                args.retry_backoff_s if args.retry_backoff_s is not None
                else 0.5
            ),
        )
    try:
        if args.preset:
            sweep = preset_sweep(args.preset)
        else:
            spec_path = Path(args.spec)
            if spec_path.is_file():
                sweep = SweepSpec.from_file(spec_path)
            elif args.spec in PRESETS:
                # `repro sweep topology-scale` works without --preset.
                sweep = preset_sweep(args.spec)
            else:
                out.write(f"no such sweep spec file or preset: {args.spec}\n")
                out.write(f"presets: {', '.join(sorted(PRESETS))}\n")
                return 2
    except (SpecError, KeyError) as exc:
        # KeyError only reaches here from preset_sweep's unknown-preset
        # path; internal errors inside run_sweep below propagate.
        out.write(f"{exc.args[0] if exc.args else exc}\n")
        return 2
    if args.sim_parallel is not None:
        error = _apply_sim_parallel(sweep, args.sim_parallel, out)
        if error:
            return error
    if args.repeats is not None and args.repeats < 1:
        out.write(f"--repeats must be >= 1, got {args.repeats}\n")
        return 2
    out_dir = Path(args.out) if args.out else Path("runs") / sweep.name
    try:
        outcome = run_sweep(
            sweep,
            out_dir,
            jobs=args.jobs,
            force=args.force,
            progress=lambda line: out.write(line + "\n"),
            backend=backend,
            repeats=args.repeats,
            telemetry=not args.no_telemetry,
            profile=args.profile,
        )
    except (SpecError, LockHeldError) as exc:
        out.write(f"{exc}\n")
        return 2
    out.write(
        f"sweep {sweep.name!r} [{outcome.backend}]: {outcome.total} specs — "
        f"{len(outcome.executed) - len(outcome.failed)} ran ok, "
        f"{outcome.cached} cached, {len(outcome.failed)} failed\n"
    )
    out.write(f"results: {outcome.out_dir}\n")
    return 1 if outcome.failed else 0


def _apply_sim_parallel(sweep, value: str, out: IO[str]) -> int:
    """Inject a ``--sim-parallel`` override into a sweep's groups.

    Applies to every group whose experiment accepts a ``sim_parallel``
    parameter; groups that already pin or sweep it keep their own
    values.  Returns a nonzero exit code on a malformed value, else 0.
    """
    from repro.harness.experiments import spec_parameters

    text = value.strip().lower()
    if text == "auto":
        parsed: object = "auto"
    else:
        try:
            parsed = int(text)
        except ValueError:
            parsed = -1
        if not isinstance(parsed, int) or parsed < 0:
            out.write(
                f"--sim-parallel must be a non-negative integer or 'auto', "
                f"got {value!r}\n"
            )
            return 2
    key = sweep.SIM_PARALLEL_PARAM
    applied = 0
    for group in sweep.groups:
        if key in group.params or key in group.grid:
            continue
        try:
            accepted = spec_parameters(group.experiment)
        except KeyError:
            continue  # unknown experiment: validate() reports it properly
        if key in accepted:
            group.params[key] = parsed
            applied += 1
    if not applied:
        out.write(
            "note: --sim-parallel applied to no experiment group "
            "(none accept sim_parallel, or all pin it already)\n"
        )
    return 0


def _cmd_worker(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.experiments import QueueError, run_worker

    try:
        outcome = run_worker(
            args.run_dir,
            worker_id=args.worker_id,
            poll_s=args.poll_s,
            wait_s=args.wait_s,
            max_specs=args.max_specs,
            progress=lambda line: out.write(line + "\n"),
        )
    except QueueError as exc:
        out.write(f"{exc}\n")
        out.write(
            "start the scheduler first: repro sweep ... --backend queue "
            f"--out {args.run_dir} (or raise --wait-s)\n"
        )
        return 2
    out.write(
        f"worker {outcome.worker_id}: {len(outcome.executed)} specs "
        f"({len(outcome.failed)} failed, {outcome.retried} retried)\n"
    )
    return 1 if outcome.failed else 0


def _cmd_status(args: argparse.Namespace, out: IO[str]) -> int:
    import time as _time

    from repro.experiments import ResultStore
    from repro.obs import collect_status, render_status

    run_dir = Path(args.run_dir)
    store = ResultStore(run_dir)
    from repro.obs.telemetry import telemetry_dir

    if (
        not store.exists()
        and not store.sweep_path.is_file()
        and not telemetry_dir(run_dir).is_dir()
    ):
        out.write(f"no run found under {args.run_dir}\n")
        return 2
    while True:
        status = collect_status(run_dir)
        out.write(render_status(status))
        out.write("\n")
        if args.watch is None or status["finished"]:
            return 0
        _time.sleep(args.watch)
        out.write("\n")


def _cmd_timeline(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.obs import write_timeline
    from repro.obs.telemetry import read_events

    run_dir = Path(args.run_dir)
    events, skipped = read_events(run_dir)
    if not events:
        out.write(
            f"no telemetry under {args.run_dir} — was the sweep run with "
            f"telemetry off (--no-telemetry), or before it existed?\n"
        )
        return 2
    path = write_timeline(run_dir, args.out)
    out.write(f"wrote {path}: {len(events)} telemetry event(s)")
    if skipped:
        out.write(f" ({skipped} malformed line(s) skipped)")
    out.write("\n")
    return 0


def _cmd_report(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.experiments import ResultStore, RunReport

    store = ResultStore(args.run_dir)
    if not store.exists():
        out.write(f"no results found under {args.run_dir}\n")
        return 2
    report = RunReport(store)
    out.write(report.markdown())
    out.write("\n")
    workers = report.worker_markdown()
    if workers:
        out.write("\n")
        out.write(workers)
        out.write("\n")
    profile = report.profile_markdown()
    if profile:
        out.write("\n")
        out.write(profile)
        out.write("\n")
    if report.failures:
        out.write("\nfailures:\n")
        for record in report.failures:
            first = (record.error or "").strip().splitlines()
            out.write(f"  {record.experiment} ({record.spec_hash}): "
                      f"{first[-1] if first else 'unknown error'}\n")
    return 0


def _cmd_bench(args: argparse.Namespace, out: IO[str]) -> int:
    import json

    from repro import bench
    from repro.cache.mesi import set_fast_mode

    baseline = None
    if args.check:
        # Load (and fail on) the baseline *before* spending minutes
        # benchmarking against a payload that turns out unreadable.
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            out.write(f"perf gate: no baseline payload at {baseline_path}\n")
            return 2
        try:
            baseline = json.loads(baseline_path.read_text())
        except json.JSONDecodeError as exc:
            out.write(f"perf gate: invalid baseline JSON: {exc}\n")
            return 2
    # Validation stays ON by default so the recorded numbers (above
    # all sweep_quick.wall_s) measure exactly what `repro sweep` users
    # pay; --fast opts validated configs into the MESI fast mode.
    previous = set_fast_mode(args.fast)
    try:
        payload = bench.run_bench(
            quick=args.quick, progress=lambda line: out.write(f"  {line}\n")
        )
    finally:
        set_fast_mode(previous)
    path = bench.write_bench(payload, args.out or bench.DEFAULT_OUT)
    out.write(bench.render(payload))
    out.write(f"\nwrote {path}\n")
    if baseline is None:
        return 0
    mismatch = bench.machine_mismatch(payload, baseline)
    if mismatch:
        # Cross-machine numbers are not comparable; a gate that fails on
        # them would only report hardware churn, so warn and pass.
        out.write(f"perf gate: skipped — {mismatch}\n")
        return 0
    outcome = bench.check_regression(payload, baseline, args.threshold)
    out.write(bench.render_check(outcome, args.threshold))
    out.write("\n")
    return 1 if outcome["regressions"] else 0


def _cmd_analyze(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.experiments import ResultStore, RunAnalysis
    from repro.experiments.stats import StatsError

    store = ResultStore(args.run_dir)
    if not store.exists():
        out.write(f"no results found under {args.run_dir}\n")
        return 2
    try:
        analysis = RunAnalysis(
            store,
            alpha=args.alpha,
            min_repeats=args.min_repeats,
            metrics=args.metric or None,
        )
    except StatsError as exc:
        out.write(f"{exc}\n")
        return 2
    out.write(analysis.markdown())
    out.write("\n")
    if args.html:
        from repro.experiments.plotting import PlotError
        from repro.experiments.rendering import write_html_report

        try:
            path = write_html_report(analysis, args.html, plots=args.plots)
        except PlotError as exc:
            out.write(f"{exc}\n")
            return 2
        out.write(f"wrote {path}\n")
    return 0


def _cmd_compare(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.experiments import ResultStore, compare_runs

    stores = [ResultStore(args.run_a), ResultStore(args.run_b)]
    for store in stores:
        if not store.exists():
            out.write(f"no results found under {store.root}\n")
            return 2
    out.write(compare_runs(*stores))
    out.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cohet/SimCXL reproduction: regenerate the paper's tables and figures",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments (or 'all')")
    run.add_argument(
        "experiments", nargs="*", help="experiment id(s) (see 'list') or 'all'"
    )
    run.add_argument("--out", help="write results to this file instead of stdout")
    run.add_argument(
        "--list", action="store_true",
        help="list experiment ids with descriptions instead of running",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="profile the simulator while running: events/sec plus "
        "per-component event and sampled callback-time attribution",
    )

    sub.add_parser("info", help="show calibrated profile summaries")

    topology = sub.add_parser(
        "topology",
        help="list, inspect, or (de)serialize registered system topologies",
    )
    topology.add_argument(
        "action", choices=["list", "show", "load", "dump", "validate"]
    )
    topology.add_argument(
        "names", nargs="*",
        help="topology name (show/dump) or JSON spec file(s) (load/validate)",
    )
    topology.add_argument(
        "--out", help="write 'dump' JSON to this file instead of stdout"
    )

    workload = sub.add_parser(
        "workload",
        help="list, inspect, record, or replay traffic workloads",
    )
    workload.add_argument(
        "action", choices=["list", "show", "record", "replay"]
    )
    workload.add_argument(
        "names", nargs="*",
        help="workload name/reference (show/record) or trace file (replay)",
    )
    workload.add_argument(
        "--seed", type=int, default=1234,
        help="expansion seed for show/record and live replay (default 1234)",
    )
    workload.add_argument(
        "--out", help="trace file to write ('record' only)"
    )
    workload.add_argument(
        "--topology", default="microbench",
        help="topology reference to replay through (default: microbench)",
    )
    workload.add_argument(
        "--profile", default="fpga",
        help="system profile for replay (default: fpga)",
    )
    workload.add_argument(
        "--streams", type=int, default=None,
        help="re-stripe a single-stream workload across N issue chains",
    )

    sweep = sub.add_parser(
        "sweep", help="run a parameter sweep in parallel, persisting results"
    )
    sweep.add_argument(
        "spec", nargs="?",
        help="path to a sweep spec JSON file, or a preset name",
    )
    sweep.add_argument("--preset", help="built-in sweep preset (e.g. 'quick')")
    sweep.add_argument(
        "--out", help="run directory for results (default: runs/<sweep name>)"
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, help="parallel workers (default: auto)"
    )
    sweep.add_argument(
        "--force", action="store_true", help="re-run specs even when cached"
    )
    sweep.add_argument(
        "--backend", choices=["serial", "pool", "queue"], default=None,
        help="executor backend (default: pool; 'queue' writes a durable "
        "work queue that 'repro worker' processes can join)",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=None,
        help="re-attempts per failed spec before it is marked failed "
        "(queue backend only; default 2)",
    )
    sweep.add_argument(
        "--retry-backoff-s", type=float, default=None,
        help="base exponential backoff between spec attempts in seconds "
        "(queue backend only; default 0.5)",
    )
    sweep.add_argument(
        "--sim-parallel", default=None, metavar="N",
        help="windowed-parallel simulation worker count ('auto' or an "
        "integer >= 0; 0 = legacy serial path) for every experiment "
        "group that accepts sim_parallel and does not pin it",
    )
    sweep.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="run every grid point N times with distinct deterministic "
        "seeds (overrides the sweep file's own repeat count); 'repro "
        "analyze' tests significance across the repeats",
    )
    sweep.add_argument(
        "--no-telemetry", action="store_true",
        help="do not write lifecycle events to <run-dir>/telemetry/ "
        "(disables 'repro status'/'repro timeline' for this run)",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="run every spec under the simulator profiler and persist "
        "per-component attribution on its record ('repro report' "
        "aggregates it)",
    )

    fault = sub.add_parser(
        "fault",
        help="list, inspect, or validate fault-injection plans",
    )
    fault.add_argument("action", choices=["list", "show", "validate"])
    fault.add_argument(
        "names", nargs="*",
        help="plan name/reference (show) or JSON plan file(s) "
        "(validate; show also accepts a file)",
    )

    worker = sub.add_parser(
        "worker",
        help="join a queue-backend sweep: lease specs from a run "
        "directory's work queue until it drains",
    )
    worker.add_argument(
        "run_dir", help="run directory of a sweep started with --backend queue"
    )
    worker.add_argument(
        "--worker-id", help="lease owner label (default: <host>-<pid>)"
    )
    worker.add_argument(
        "--max-specs", type=int, default=None,
        help="execute at most N specs before exiting",
    )
    worker.add_argument(
        "--poll-s", type=float, default=0.2,
        help="idle poll interval while waiting for claimable specs",
    )
    worker.add_argument(
        "--wait-s", type=float, default=10.0,
        help="how long to wait for the scheduler to create the queue",
    )

    status = sub.add_parser(
        "status",
        help="live view of a run directory: progress, queue depth, "
        "per-worker throughput, retries, ETA",
    )
    status.add_argument("run_dir", help="run directory of a sweep")
    status.add_argument(
        "--watch", type=float, default=None, metavar="S",
        help="re-render every S seconds until the run finishes",
    )

    timeline = sub.add_parser(
        "timeline",
        help="export a run's telemetry as Chrome trace-event JSON "
        "(load in Perfetto or chrome://tracing)",
    )
    timeline.add_argument("run_dir", help="run directory of a sweep")
    timeline.add_argument(
        "--out", default=None,
        help="output path (default: <run-dir>/timeline.json)",
    )

    report = sub.add_parser("report", help="summarise a stored sweep run")
    report.add_argument("run_dir", help="run directory written by 'sweep'")

    compare = sub.add_parser("compare", help="delta table between two stored runs")
    compare.add_argument("run_a", help="baseline run directory")
    compare.add_argument("run_b", help="comparison run directory")

    analyze = sub.add_parser(
        "analyze",
        help="significance-test a repeat sweep: Mann-Whitney contrasts "
        "with Holm correction and effect sizes, optional HTML report",
    )
    analyze.add_argument("run_dir", help="run directory written by 'sweep'")
    analyze.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level after Holm correction (default 0.05)",
    )
    analyze.add_argument(
        "--metric", action="append", default=None, metavar="NAME",
        help="only test this metric (repeatable; default: all shared)",
    )
    analyze.add_argument(
        "--min-repeats", type=int, default=2,
        help="smallest group size worth testing (default 2)",
    )
    analyze.add_argument(
        "--html", default=None, metavar="PATH",
        help="also render a self-contained HTML report to PATH",
    )
    analyze.add_argument(
        "--plots", choices=["svg", "matplotlib", "none"], default="svg",
        help="distribution plot backend for --html (default: svg)",
    )

    bench = sub.add_parser(
        "bench", help="run hot-path microbenchmarks, write BENCH_engine.json"
    )
    bench.add_argument(
        "--quick", action="store_true", help="smaller workloads (CI smoke sizes)"
    )
    bench.add_argument(
        "--out", help="output JSON path (default: BENCH_engine.json)"
    )
    bench.add_argument(
        "--fast", action="store_true",
        help="skip MESI transition validation (validated configs only)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="perf gate: compare throughput against --baseline and exit "
        "nonzero on regression (skips with a warning when the baseline "
        "came from a different machine shape)",
    )
    bench.add_argument(
        "--baseline", default="benchmarks/BENCH_baseline.json",
        help="baseline payload for --check "
        "(default: benchmarks/BENCH_baseline.json)",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.15,
        help="fractional throughput drop that fails --check (default 0.15)",
    )
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "info": _cmd_info,
    "topology": _cmd_topology,
    "workload": _cmd_workload,
    "fault": _cmd_fault,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "status": _cmd_status,
    "timeline": _cmd_timeline,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "analyze": _cmd_analyze,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sink: IO[str] = sys.stdout
    close_sink = False
    if getattr(args, "out", None) and args.command == "run":
        sink = open(args.out, "w")
        close_sink = True
    try:
        return _COMMANDS[args.command](args, sink)
    finally:
        if close_sink:
            sink.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
