"""CircusTent atomic-memory-operation access patterns (§VI-D).

Six patterns over a shared table ``A`` of 8-byte elements (plus index
arrays ``B``/``C`` for the scatter/gather family):

* RAND    — AMO at a uniformly random element of A.
* STRIDE1 — AMO at consecutive elements of A.
* CENTRAL — every AMO targets element A[0] (distributed lock service).
* GATHER  — read index ``B[i]`` (sequential), AMO at ``A[B[i]]``.
* SCATTER — read ``B[i]``, AMO (write-style) at ``A[B[i]]``.
* SG      — read ``B[i]`` and ``C[i]``, read ``A[B[i]]``, AMO at ``A[C[i]]``.

Each request lists the plain reads that precede the atomic, so both NIC
designs pay for index-array traffic the way the hardware would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.rao.ops import AtomicOp

ELEMENT = 8  # CircusTent operates on u64 elements


@dataclass
class RaoRequest:
    """One remote atomic operation as it arrives at the NIC."""

    op: AtomicOp
    target: int                      # host address of the atomic
    operand: int = 1
    reads: List[int] = field(default_factory=list)   # index-array loads
    source_node: int = 1


@dataclass
class CircusTentWorkload:
    """A named pattern instantiated into a request stream."""

    name: str
    requests: List[RaoRequest]
    table_bytes: int

    def __len__(self) -> int:
        return len(self.requests)


CIRCUSTENT_PATTERNS = ("RAND", "STRIDE1", "CENTRAL", "SG", "SCATTER", "GATHER")

# Additional CircusTent patterns beyond the six the paper plots; useful
# for sensitivity studies (STRIDEN with a configurable stride, and the
# pathological pointer-chasing PTRCHASE).
EXTRA_PATTERNS = ("STRIDEN", "PTRCHASE")

_TABLE_BASE = 0x4000_0000
_B_BASE = 0x6000_0000
_C_BASE = 0x6800_0000


def make_workload(
    pattern: str,
    ops: int = 4096,
    table_bytes: int = 1 << 30,
    seed: int = 7,
    stride_elements: int = 16,
) -> CircusTentWorkload:
    """Build ``ops`` requests of the named pattern.

    The table deliberately dwarfs the 128 KB HMC (and mostly misses the
    LLC) so cacheability differences between patterns — not table
    sizing — drive the results, as in the benchmark's configuration.
    """
    if pattern not in CIRCUSTENT_PATTERNS + EXTRA_PATTERNS:
        raise ValueError(
            f"unknown pattern {pattern!r}; options: "
            f"{CIRCUSTENT_PATTERNS + EXTRA_PATTERNS}"
        )
    rng = random.Random(seed)
    elements = table_bytes // ELEMENT
    requests: List[RaoRequest] = []

    def element_addr(index: int) -> int:
        return _TABLE_BASE + (index % elements) * ELEMENT

    if pattern == "RAND":
        for _ in range(ops):
            requests.append(
                RaoRequest(AtomicOp.FAA, element_addr(rng.randrange(elements)))
            )
    elif pattern == "STRIDE1":
        for i in range(ops):
            requests.append(RaoRequest(AtomicOp.FAA, element_addr(i)))
    elif pattern == "CENTRAL":
        for _ in range(ops):
            requests.append(RaoRequest(AtomicOp.FAA, element_addr(0)))
    elif pattern == "GATHER":
        for i in range(ops):
            idx = rng.randrange(elements)
            requests.append(
                RaoRequest(
                    AtomicOp.FAA,
                    element_addr(idx),
                    reads=[_B_BASE + i * ELEMENT],
                )
            )
    elif pattern == "SCATTER":
        for i in range(ops):
            idx = rng.randrange(elements)
            requests.append(
                RaoRequest(
                    AtomicOp.SWAP,
                    element_addr(idx),
                    reads=[_B_BASE + i * ELEMENT],
                )
            )
    elif pattern == "SG":
        for i in range(ops):
            src = rng.randrange(elements)
            dst = rng.randrange(elements)
            requests.append(
                RaoRequest(
                    AtomicOp.SWAP,
                    element_addr(dst),
                    reads=[
                        _B_BASE + i * ELEMENT,
                        _C_BASE + i * ELEMENT,
                        element_addr(src),
                    ],
                )
            )
    elif pattern == "STRIDEN":
        if stride_elements <= 0:
            raise ValueError("stride must be positive")
        for i in range(ops):
            requests.append(RaoRequest(AtomicOp.FAA, element_addr(i * stride_elements)))
    elif pattern == "PTRCHASE":
        # A random permutation walk: each AMO target is derived from the
        # previous element's value — fully serial, zero spatial locality.
        index = rng.randrange(elements)
        for _ in range(ops):
            next_index = (index * 1_103_515_245 + 12_345) % elements
            requests.append(
                RaoRequest(
                    AtomicOp.SWAP,
                    element_addr(next_index),
                    reads=[element_addr(index)],
                )
            )
            index = next_index
    return CircusTentWorkload(pattern, requests, table_bytes)
