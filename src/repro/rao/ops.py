"""Atomic operation semantics.

The NIC PEs execute these as the "modify" stage of read-modify-write.
All arithmetic is on unsigned 64-bit values (wrapping), matching the
RDMA verbs/CircusTent operand width.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

MASK64 = (1 << 64) - 1


class AtomicOp(enum.Enum):
    FAA = "fetch-and-add"
    CAS = "compare-and-swap"
    SWAP = "swap"
    FETCH_AND_OR = "fetch-and-or"
    FETCH_AND_AND = "fetch-and-and"
    FETCH_AND_XOR = "fetch-and-xor"


def apply_atomic(
    op: AtomicOp,
    current: int,
    operand: int,
    compare: Optional[int] = None,
) -> Tuple[int, int]:
    """Apply ``op``; returns ``(new_value, fetched_old_value)``."""
    current &= MASK64
    operand &= MASK64
    if op is AtomicOp.FAA:
        return (current + operand) & MASK64, current
    if op is AtomicOp.CAS:
        if compare is None:
            raise ValueError("CAS requires a compare value")
        if current == (compare & MASK64):
            return operand, current
        return current, current
    if op is AtomicOp.SWAP:
        return operand, current
    if op is AtomicOp.FETCH_AND_OR:
        return current | operand, current
    if op is AtomicOp.FETCH_AND_AND:
        return current & operand, current
    if op is AtomicOp.FETCH_AND_XOR:
        return current ^ operand, current
    raise ValueError(f"unknown atomic op {op}")
