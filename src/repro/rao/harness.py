"""RAO evaluation harness: CXL-NIC vs. PCIe-NIC over CircusTent (Fig. 17)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config.system import SystemConfig
from repro.nic.cxl_nic import CxlRaoNic
from repro.nic.pcie_nic import PcieRaoNic
from repro.rao.circustent import CIRCUSTENT_PATTERNS, make_workload
from repro.system import SystemBuilder


@dataclass
class RaoComparison:
    """Per-pattern throughput for the two NIC designs."""

    pattern: str
    pcie_mops: float
    cxl_mops: float
    cxl_hit_rate: float

    @property
    def speedup(self) -> float:
        return self.cxl_mops / self.pcie_mops


def run_rao_comparison(
    config: SystemConfig,
    patterns: Sequence[str] = CIRCUSTENT_PATTERNS,
    ops: int = 2048,
    table_bytes: int = 1 << 30,
    seed: int = 7,
    pe_count: Optional[int] = None,
) -> Dict[str, RaoComparison]:
    """Run every pattern on both NICs; returns comparisons keyed by name.

    Each pattern gets fresh systems built from the ``"rao-pcie"`` and
    ``"rao-cxl"`` topologies so no cache state leaks between patterns.
    """
    builder = SystemBuilder(config)
    results: Dict[str, RaoComparison] = {}
    for pattern in patterns:
        workload = make_workload(pattern, ops=ops, table_bytes=table_bytes, seed=seed)

        pcie: PcieRaoNic = builder.build("rao-pcie").node("pcie-nic")
        pcie_run = pcie.run(workload.requests)

        cxl: CxlRaoNic = builder.build("rao-cxl", pe_count=pe_count).node("cxl-nic")
        cxl.warm()
        cxl_run = cxl.run(workload.requests)

        accesses = cxl.hmc_hits + cxl.hmc_misses
        results[pattern] = RaoComparison(
            pattern=pattern,
            pcie_mops=pcie_run.throughput_mops,
            cxl_mops=cxl_run.throughput_mops,
            cxl_hit_rate=cxl.hmc_hits / accesses if accesses else 0.0,
        )
    return results
