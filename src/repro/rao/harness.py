"""RAO evaluation harness: CXL-NIC vs. PCIe-NIC over CircusTent (Fig. 17)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cache.llc import SharedLLC
from repro.config.system import SystemConfig
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.nic.base import HostValues
from repro.nic.cxl_nic import CxlRaoNic
from repro.nic.pcie_nic import PcieRaoNic
from repro.rao.circustent import CIRCUSTENT_PATTERNS, make_workload
from repro.sim.engine import Simulator


@dataclass
class RaoComparison:
    """Per-pattern throughput for the two NIC designs."""

    pattern: str
    pcie_mops: float
    cxl_mops: float
    cxl_hit_rate: float

    @property
    def speedup(self) -> float:
        return self.cxl_mops / self.pcie_mops


def _build_cxl_nic(config: SystemConfig, pe_count: Optional[int]) -> CxlRaoNic:
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    controller = MemoryController(config.host.dram, channels=config.host.mem_channels)
    memif.attach("host", AddressRange(0, 1 << 40, "host"), controller)
    llc = SharedLLC(sim, config.host, memif)
    return CxlRaoNic(sim, config, llc, HostValues(), pe_count=pe_count)


def run_rao_comparison(
    config: SystemConfig,
    patterns: Sequence[str] = CIRCUSTENT_PATTERNS,
    ops: int = 2048,
    table_bytes: int = 1 << 30,
    seed: int = 7,
    pe_count: Optional[int] = None,
) -> Dict[str, RaoComparison]:
    """Run every pattern on both NICs; returns comparisons keyed by name."""
    results: Dict[str, RaoComparison] = {}
    for pattern in patterns:
        workload = make_workload(pattern, ops=ops, table_bytes=table_bytes, seed=seed)

        pcie = PcieRaoNic(Simulator(), config, HostValues())
        pcie_run = pcie.run(workload.requests)

        cxl = _build_cxl_nic(config, pe_count)
        cxl.warm()
        cxl_run = cxl.run(workload.requests)

        accesses = cxl.hmc_hits + cxl.hmc_misses
        results[pattern] = RaoComparison(
            pattern=pattern,
            pcie_mops=pcie_run.throughput_mops,
            cxl_mops=cxl_run.throughput_mops,
            cxl_hit_rate=cxl.hmc_hits / accesses if accesses else 0.0,
        )
    return results
