"""Remote atomic operations: semantics, CircusTent workloads, harness."""

from repro.rao.ops import AtomicOp, apply_atomic
from repro.rao.circustent import (
    CIRCUSTENT_PATTERNS,
    CircusTentWorkload,
    RaoRequest,
    make_workload,
)

# repro.rao.harness is imported explicitly by callers: it depends on the
# NIC models, which in turn consume the workload types above.
__all__ = [
    "AtomicOp",
    "apply_atomic",
    "CIRCUSTENT_PATTERNS",
    "CircusTentWorkload",
    "RaoRequest",
    "make_workload",
]
