"""Microbenchmarks for the simulator hot path (engine, cache, RPC).

Unlike the figure benchmarks, these measure the simulator itself: raw
event-calendar throughput, cancellation churn, and the cache-array
access mix.  ``repro bench`` runs the same workloads at larger sizes
and records them in ``BENCH_engine.json``; this suite keeps them under
pytest-benchmark so a plain ``pytest benchmarks/ --benchmark-only``
also tracks engine regressions.
"""

from repro import bench
from repro.sim.engine import Simulator


def test_bench_engine_drain(benchmark):
    result = benchmark.pedantic(
        bench.bench_engine_drain, kwargs={"events": 50_000}, rounds=3, iterations=1
    )
    assert result["events"] >= 50_000
    assert result["events_per_sec"] > 0


def test_bench_engine_cancel(benchmark):
    result = benchmark.pedantic(
        bench.bench_engine_cancel, kwargs={"events": 20_000}, rounds=3, iterations=1
    )
    # Half the scheduled events are cancelled (some cancels land on
    # already-cancelled handles, so the fired count floats above half).
    assert 0 < result["events"] <= result["scheduled"]


def test_bench_cache_array(benchmark):
    result = benchmark.pedantic(
        bench.bench_cache_array, kwargs={"ops": 50_000}, rounds=3, iterations=1
    )
    assert result["ops"] == 50_000
    assert 0.0 < result["hit_rate"] < 1.0


def test_bench_rpc(benchmark):
    result = benchmark.pedantic(
        bench.bench_rpc, kwargs={"messages": 10}, rounds=1, iterations=1
    )
    assert result["deser_speedup"] > 1.0


def test_bench_workloads_are_deterministic():
    """The same workload executes the same event sequence every run."""
    first = bench.bench_engine_drain(events=5_000)
    second = bench.bench_engine_drain(events=5_000)
    assert first["events"] == second["events"]

    first = bench.bench_cache_array(ops=5_000)
    second = bench.bench_cache_array(ops=5_000)
    assert first["hit_rate"] == second["hit_rate"]


def test_raw_fast_path_schedule(benchmark):
    """Pure schedule_after + drain cost, no workload logic at all."""

    def drain() -> int:
        sim = Simulator()
        noop = lambda: None  # noqa: E731
        for i in range(10_000):
            sim.schedule_after(i % 977, noop)
        sim.run()
        return sim.executed

    executed = benchmark.pedantic(drain, rounds=3, iterations=1)
    assert executed == 10_000


def test_bench_result_store_quick():
    """Sharded append + streaming aggregation stays correct at bench sizes."""
    result = bench.bench_result_store(records=500)
    assert result["records"] == 500
    assert result["shards"] >= 1
    assert result["distinct"] == 500 and result["ok"] == 500
    assert result["appends_per_sec"] > 0
