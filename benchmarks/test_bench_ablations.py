"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these sweep the knobs whose calibrated
operating points produce the paper's results, showing each mechanism's
contribution.
"""

import dataclasses

import pytest
from conftest import run_and_print

from repro.calibration.microbench import CxlTestbench
from repro.config import asic_system
from repro.harness.tables import render_series
from repro.nic.prefetcher import MultiStridePrefetcher
from repro.rao.harness import run_rao_comparison
from repro.rpc.cxl_rpc import CxlRpcPipeline
from repro.rpc.hyperprotobench import make_bench


class _Result:
    def __init__(self, series, text):
        self.series = series
        self.text = text


def test_bench_ablation_rao_pe_count(benchmark):
    """RAO PE parallelism: misses overlap, so RAND scales with PEs while
    CENTRAL (single hot line, locked) does not."""

    def run():
        series = {}
        for pes in (1, 2, 8):
            res = run_rao_comparison(
                asic_system(), patterns=("RAND", "CENTRAL"), ops=512, pe_count=pes
            )
            series[f"{pes}PE"] = {p: res[p].cxl_mops for p in res}
        return _Result(
            series,
            render_series("pattern", series, title="Ablation: RAO PE count (Mops)"),
        )

    result = run_and_print(benchmark, run)
    rand_scaling = result.series["8PE"]["RAND"] / result.series["1PE"]["RAND"]
    central_scaling = (
        result.series["8PE"]["CENTRAL"] / result.series["1PE"]["CENTRAL"]
    )
    assert rand_scaling > 4  # independent misses overlap across PEs
    # The hot line's lock serializes the RMW window, so CENTRAL scales
    # strictly worse than RAND.
    assert central_scaling < 0.85 * rand_scaling


def test_bench_ablation_hmc_size(benchmark):
    """HMC capacity drives STRIDE1 hit rates (and thus Fig. 17)."""

    def run():
        series = {"hit_rate": {}}
        for kb in (32, 128, 512):
            config = asic_system()
            device = dataclasses.replace(config.device, hmc_size=kb * 1024)
            res = run_rao_comparison(
                config.replace(device=device), patterns=("STRIDE1",), ops=512
            )
            series["hit_rate"][f"{kb}KB"] = res["STRIDE1"].cxl_hit_rate
        return _Result(
            series,
            render_series("hmc", series, title="Ablation: HMC size vs. hit rate"),
        )

    result = run_and_print(benchmark, run)
    rates = result.series["hit_rate"]
    assert rates["32KB"] <= rates["128KB"] <= rates["512KB"] + 1e-9


def test_bench_ablation_prefetcher_degree(benchmark):
    """Prefetch degree vs. serialization time on a flat bench."""

    def run():
        config = asic_system()
        bench = make_bench("Bench1", messages=100)
        pipeline = CxlRpcPipeline(config)
        base = pipeline.serialize_bench_cache(bench).total_us
        series = {"time_us": {"no-pf": base}, "gain": {"no-pf": 0.0}}
        for degree in (1, 2, 4, 8):
            pf = MultiStridePrefetcher(degree=degree)
            t = pipeline.serialize_bench_cache(bench, prefetcher=pf).total_us
            series["time_us"][f"deg{degree}"] = t
            series["gain"][f"deg{degree}"] = 1 - t / base
        return _Result(
            series,
            render_series("config", series, title="Ablation: prefetch degree"),
        )

    result = run_and_print(benchmark, run)
    gains = result.series["gain"]
    assert gains["deg4"] > gains["deg1"] > 0


def test_bench_ablation_outstanding_window(benchmark):
    """The LSU outstanding window bounds LLC-hit bandwidth (Fig. 15's
    14.1 GB/s needs >135 in-flight lines at a 576 ns round trip)."""

    def run():
        series = {"llc_bw_gbps": {}}
        for window in (16, 64, 256):
            config = asic_system()
            device = dataclasses.replace(config.device, max_outstanding=window)
            tb = CxlTestbench(config.replace(device=device))
            series["llc_bw_gbps"][window] = tb.bandwidth_llc_hit(
                count=1024
            ).bandwidth_gbps
        return _Result(
            series,
            render_series("window", series, title="Ablation: outstanding window"),
        )

    result = run_and_print(benchmark, run)
    bw = result.series["llc_bw_gbps"]
    assert bw[16] < bw[64] < bw[256]


def test_bench_ablation_rpc_nesting(benchmark):
    """Nesting depth is what defeats the prefetcher (Bench2's 3.6%)."""

    def run():
        config = asic_system()
        pipeline = CxlRpcPipeline(config)
        series = {"gain": {}}
        for name in ("Bench1", "Bench3", "Bench2"):
            bench = make_bench(name, messages=80)
            base = pipeline.serialize_bench_cache(bench).total_us
            pf = pipeline.serialize_bench_cache(bench, prefetch=True).total_us
            series["gain"][name] = 1 - pf / base
        return _Result(
            series,
            render_series("bench", series, title="Ablation: nesting vs. prefetch gain"),
        )

    result = run_and_print(benchmark, run)
    gains = result.series["gain"]
    assert gains["Bench2"] < gains["Bench1"]
