"""Benchmarks regenerating Table I and Table II."""

from conftest import run_and_print

from repro.harness.experiments import table1_configurations, table2_comparison


def test_bench_table1(benchmark):
    result = run_and_print(benchmark, table1_configurations)
    assert result.series["testbed"]["CPU cores"] == "48"


def test_bench_table2(benchmark):
    result = run_and_print(benchmark, table2_comparison)
    assert result.series["SimCXL"]["CXL.cache Support"] == "Yes"
