"""§VI headline numbers and the overall calibration error."""

from conftest import run_and_print

from repro.harness.experiments import headline_metrics, simulation_error


def test_bench_headline(benchmark):
    result = run_and_print(benchmark, headline_metrics)
    measured = result.series["measured"]
    # -68% latency, 14.4x bandwidth vs. DMA at 64 B.
    assert abs(measured["latency_reduction"] - 0.68) < 0.02
    assert abs(measured["bandwidth_ratio"] - 14.4) / 14.4 < 0.05


def test_bench_calibration_mape(benchmark):
    result = run_and_print(benchmark, simulation_error)
    # The paper reports ~3% MAPE after calibration.
    assert result.series["overall"]["mape"] <= 0.03
