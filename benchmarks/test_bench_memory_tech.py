"""Ablation: device-memory technology under the CXL.mem RPC path.

§IV-B.3 lets the device memory use DDR, NVM, or HBM models; this bench
sweeps the technology under a CXL.mem access stream (the serializer's
local reads) and shows the latency/throughput consequences.
"""

from conftest import run_and_print

from repro.config import asic_system
from repro.harness.tables import render_series
from repro.interconnect.flexbus import FlexBus
from repro.mem.address import AddressRange
from repro.mem.technologies import TECHNOLOGIES, make_controller, nominal_read_ns
from repro.cxl.mem import CxlMemPath
from repro.sim.engine import Simulator


class _Result:
    def __init__(self, series, text):
        self.series = series
        self.text = text


def test_bench_device_memory_technology(benchmark):
    def run():
        config = asic_system()
        series = {"h2d_line_ns": {}, "media_read_ns": {}}
        hdm = AddressRange(1 << 30, (1 << 30) + (1 << 24), "hdm")
        for tech in sorted(TECHNOLOGIES):
            sim = Simulator()
            flexbus = FlexBus(sim, config.device)
            controller = make_controller(tech, channels=1, seed=3)
            path = CxlMemPath(
                sim, config.host, config.device, flexbus, hdm, controller
            )
            # Median of a short access train (skip refresh window).
            sim.run(until_ps=400_000)
            samples = sorted(
                path.access_ps((1 << 30) + i * 64) for i in range(33)
            )
            series["h2d_line_ns"][tech] = samples[len(samples) // 2] / 1000
            series["media_read_ns"][tech] = nominal_read_ns(tech)
        return _Result(
            series,
            render_series(
                "technology",
                series,
                title="Ablation: device-memory technology (CXL.mem line access)",
            ),
        )

    result = run_and_print(benchmark, run)
    line = result.series["h2d_line_ns"]
    # DRAM-class technologies are close; NVM is far slower; HBM's
    # latency is comparable to DDR (its win is bandwidth, not latency).
    assert line["nvm"] > 2 * line["ddr5"]
    assert abs(line["hbm"] - line["ddr5"]) / line["ddr5"] < 0.25
    # The PHY round trip dominates DRAM-class H2D latency.
    phy_rt_ns = 2 * asic_system().device.phy_oneway_ps / 1000
    assert line["ddr5"] > phy_rt_ns
