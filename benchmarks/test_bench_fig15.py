"""Fig. 15: average 64B load bandwidth per tier vs. DMA at 64B."""

from conftest import run_and_print

from repro.calibration.reference import LOAD_BANDWIDTH_GBPS
from repro.harness.experiments import fig15_load_bandwidth


def test_bench_fig15(benchmark):
    result = run_and_print(benchmark, fig15_load_bandwidth)
    for profile, tiers in LOAD_BANDWIDTH_GBPS.items():
        for tier, ref in tiers.items():
            measured = result.series[profile][tier]
            assert abs(measured - ref) / ref < 0.03
    fpga = result.series["CXL-FPGA@400MHz"]
    # 14.4x DMA bandwidth at cacheline granularity.
    assert fpga["mem_hit"] / fpga["dma_64b"] > 13
