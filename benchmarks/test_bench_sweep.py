"""Benchmark: the sweep orchestrator end-to-end (run + report)."""

from types import SimpleNamespace

from conftest import run_and_print

from repro.experiments import RunReport, SweepSpec, run_sweep

BENCH_SWEEP = {
    "name": "bench",
    "repeats": 2,
    "experiments": [
        {"experiment": "table1"},
        {"experiment": "table2"},
        {"experiment": "fig4"},
        {"experiment": "fig13", "grid": {"trials": [2]}},
    ],
}


def _sweep_and_report(out_dir):
    outcome = run_sweep(SweepSpec.from_dict(BENCH_SWEEP), out_dir, jobs=2)
    assert outcome.ok
    report = RunReport(outcome.out_dir)
    return SimpleNamespace(text=report.markdown(), outcome=outcome)


def test_bench_sweep(benchmark, tmp_path):
    result = run_and_print(benchmark, _sweep_and_report, tmp_path / "run")
    assert result.outcome.total == 8
    assert not result.outcome.failed
