"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's tables/figures; the
rendered tables are printed in the terminal summary so that a
``pytest benchmarks/ --benchmark-only`` log contains every regenerated
figure alongside the timing table.
"""

from typing import List

import pytest

_RENDERED: List[str] = []


def run_and_print(benchmark, runner, *args, **kwargs):
    """Benchmark ``runner`` once and queue its rendered table."""
    result = benchmark.pedantic(
        runner, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    _RENDERED.append(result.text)
    return result


def pytest_terminal_summary(terminalreporter):
    if not _RENDERED:
        return
    terminalreporter.section("regenerated tables and figures")
    for text in _RENDERED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
