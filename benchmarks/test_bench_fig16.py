"""Fig. 16: average H2D DMA read bandwidth vs. message granularity."""

from conftest import run_and_print

from repro.calibration.reference import DMA_BANDWIDTH_GBPS
from repro.harness.experiments import fig16_dma_bandwidth


def test_bench_fig16(benchmark):
    result = run_and_print(benchmark, fig16_dma_bandwidth)
    fpga = result.series["PCIe-FPGA@400MHz"]
    sizes = sorted(fpga)
    # Monotonically rising with message size.
    for a, b in zip(sizes, sizes[1:]):
        assert fpga[a] < fpga[b]
    # End points match the measured curve.
    assert abs(fpga[64] - DMA_BANDWIDTH_GBPS[64]) / DMA_BANDWIDTH_GBPS[64] < 0.03
    assert (
        abs(fpga[262144] - DMA_BANDWIDTH_GBPS[262144]) / DMA_BANDWIDTH_GBPS[262144]
        < 0.03
    )
