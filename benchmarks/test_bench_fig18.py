"""Fig. 18: RPC (de)serialization, RpcNIC vs. CXL-NIC (HyperProtoBench)."""

from conftest import run_and_print

from repro.harness.experiments import (
    fig18a_deserialization,
    fig18b_serialization,
    shared_rpc_comparison,
)


def test_bench_fig18a(benchmark):
    shared_rpc_comparison.cache_clear()  # time the full pass, not a cache hit
    result = run_and_print(benchmark, fig18a_deserialization, messages=200)
    speedup = result.series["speedup"]
    # Paper: 1.33x (Bench5) to 2.05x (Bench1).
    assert max(speedup, key=speedup.get) == "Bench1"
    assert min(speedup, key=speedup.get) == "Bench5"
    assert abs(speedup["Bench1"] - 2.05) / 2.05 < 0.06
    assert abs(speedup["Bench5"] - 1.33) / 1.33 < 0.06
    assert all(s > 1.0 for s in speedup.values())


def test_bench_fig18b(benchmark):
    shared_rpc_comparison.cache_clear()  # time the full pass, not a cache hit
    result = run_and_print(benchmark, fig18b_serialization, messages=200)
    mem = result.series["speedup_mem"]
    cache_pf = result.series["speedup_cache_pf"]
    gains = result.series["prefetch_gain"]
    # CXL.mem: 2.0x (Bench5) to 4.06x (Bench1).
    assert abs(mem["Bench1"] - 4.06) / 4.06 < 0.1
    assert abs(mem["Bench5"] - 2.0) / 2.0 < 0.1
    # All three CXL paths beat RpcNIC; mem is the fastest path.
    for bench in mem:
        assert mem[bench] > cache_pf[bench] > 1.0
    # The prefetcher's smallest gain lands on the deeply nested Bench2
    # or the bulk-string Bench5 (the paper reports Bench2, 3.6%; in our
    # model bulk-string fetches are already demand-overlapped, which
    # pushes Bench5 into the same low-single-digit regime).
    assert min(gains, key=gains.get) in ("Bench2", "Bench5")
    assert min(gains.values()) < 0.06
    assert sum(gains.values()) / len(gains) > 0.04
