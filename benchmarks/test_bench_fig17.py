"""Fig. 17: CXL-RAO vs. PCIe-RAO throughput speedup (CircusTent)."""

from conftest import run_and_print

from repro.harness.experiments import fig17_rao_speedup


def test_bench_fig17(benchmark):
    result = run_and_print(benchmark, fig17_rao_speedup, ops=2048)
    speedup = result.series["speedup"]
    # Paper: CENTRAL 40.2x, STRIDE1 22.4x, RAND 5.5x; SG/SCATTER/GATHER
    # in between.
    assert abs(speedup["CENTRAL"] - 40.2) / 40.2 < 0.08
    assert abs(speedup["STRIDE1"] - 22.4) / 22.4 < 0.08
    assert abs(speedup["RAND"] - 5.5) / 5.5 < 0.08
    for moderate in ("SG", "SCATTER", "GATHER"):
        assert speedup["RAND"] < speedup[moderate] < speedup["STRIDE1"]
    # Hit rates explain the ordering.
    hits = result.series["cxl_hit_rate"]
    assert hits["CENTRAL"] > hits["STRIDE1"] > hits["RAND"]
