"""Fig. 4: programming-model comparison (AXPY listings)."""

from conftest import run_and_print

from repro.harness.experiments import fig4_programming_models


def test_bench_fig4(benchmark):
    result = run_and_print(benchmark, fig4_programming_models)
    lines = result.series["lines"]
    assert lines["cohet"] < lines["unified-memory"] < lines["explicit-copy"]
