"""Fig. 14: median H2D DMA read latency vs. message granularity."""

from conftest import run_and_print

from repro.harness.experiments import fig14_dma_latency


def test_bench_fig14(benchmark):
    result = run_and_print(benchmark, fig14_dma_latency)
    fpga = result.series["PCIe-FPGA@400MHz"]
    # Setup-dominated below 8 KB: within 25% of the 64B latency.
    assert fpga[4096] / fpga[64] < 1.25
    # Wire-dominated beyond: 256 KB costs several times more.
    assert fpga[262144] / fpga[64] > 4
    # The ASIC engine cuts the small-transfer latency roughly in half.
    asic = result.series["PCIe-ASIC@1.5GHz"]
    assert asic[64] < 0.6 * fpga[64]
