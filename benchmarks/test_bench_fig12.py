"""Fig. 12: CXL.cache load latency distribution across NUMA nodes."""

from conftest import run_and_print

from repro.calibration.reference import NUMA_MEDIAN_NS
from repro.harness.experiments import fig12_numa_latency


def test_bench_fig12(benchmark):
    result = run_and_print(benchmark, fig12_numa_latency, trials=15)
    medians = result.series["median_ns"]
    # Nearest node (7) cheapest; farthest (3) most expensive; the
    # measured gap between them is ~88 ns on the testbed.
    assert medians[7] == min(medians.values())
    assert medians[3] == max(medians.values())
    assert 70 <= medians[3] - medians[7] <= 110
    for node, ref in NUMA_MEDIAN_NS.items():
        assert abs(medians[node] - ref) / ref < 0.03
