"""Fig. 13: median 64B load latency per tier vs. DMA read at 64B."""

from conftest import run_and_print

from repro.calibration.reference import LOAD_LATENCY_NS
from repro.harness.experiments import fig13_load_latency


def test_bench_fig13(benchmark):
    result = run_and_print(benchmark, fig13_load_latency)
    for profile, tiers in LOAD_LATENCY_NS.items():
        for tier, ref in tiers.items():
            measured = result.series[profile][tier]
            assert abs(measured - ref) / ref < 0.03
    fpga = result.series["CXL-FPGA@400MHz"]
    # CXL.cache mem hit beats DMA@64B by ~68%.
    assert 1 - fpga["mem_hit"] / fpga["dma_64b"] > 0.6
