"""Benchmarks for the §VIII extensions: hierarchical coherence,
multi-node fabrics, and the outlook applications."""

from conftest import run_and_print

from repro.apps.graph import bfs_offload_study
from repro.apps.kvstore import kv_offload_study
from repro.cache.hierarchy import HierarchicalDomain
from repro.config import asic_system
from repro.harness.tables import render_series


class _Result:
    def __init__(self, series, text):
        self.series = series
        self.text = text


def test_bench_hierarchical_coherence(benchmark):
    """Fabric-message reduction from two-level coherence as the
    supernode scales (the coherence-traffic-storm mitigation)."""

    def run():
        series = {"hierarchical": {}, "flat": {}, "reduction": {}}
        for children in (2, 4, 8):
            domain = HierarchicalDomain(children=children)
            accesses = 0
            for round_ in range(64):
                for i, child in enumerate(sorted(domain.locals)):
                    # 7/8 local working-set hits, 1/8 shared-line traffic.
                    if round_ % 8 == 0:
                        domain.access(child, 0x100, exclusive=True)
                    else:
                        domain.access(child, 0x10000 * (i + 1) + (round_ % 4) * 64)
                    accesses += 1
            hier = domain.total_fabric_messages
            flat = domain.flat_equivalent_messages(accesses)
            series["hierarchical"][children] = hier
            series["flat"][children] = flat
            series["reduction"][children] = 1 - hier / flat
        return _Result(
            series,
            render_series(
                "children",
                series,
                title="Extension: hierarchical coherence fabric messages",
            ),
        )

    result = run_and_print(benchmark, run)
    for children, reduction in result.series["reduction"].items():
        assert reduction > 0.4  # local agents absorb most traffic


def test_bench_graph_offload(benchmark):
    """BFS offload: CXL vs. PCIe on neighbour-chasing traffic."""

    def run():
        study = bfs_offload_study(asic_system(), vertices=160, degree=4)
        series = {
            "value": {
                "cxl_us": study.cxl_us,
                "pcie_us": study.pcie_us,
                "speedup": study.speedup,
                "hmc_hit_rate": study.hmc_hit_rate,
            }
        }
        return _Result(
            series, render_series("metric", series, title="Extension: BFS offload")
        )

    result = run_and_print(benchmark, run)
    assert result.series["value"]["speedup"] > 5


def test_bench_kvstore_offload(benchmark):
    """GET/PUT offload: hash-probe traffic on both fabrics."""

    def run():
        study = kv_offload_study(asic_system(), operations=500, keys=128)
        series = {
            "value": {
                "cxl_us": study.cxl_us,
                "pcie_us": study.pcie_us,
                "speedup": study.speedup,
                "hmc_hit_rate": study.hmc_hit_rate,
            }
        }
        return _Result(
            series, render_series("metric", series, title="Extension: KV-store offload")
        )

    result = run_and_print(benchmark, run)
    assert result.series["value"]["speedup"] > 3
    assert result.series["value"]["hmc_hit_rate"] > 0.3
