#!/usr/bin/env python3
"""Quickstart: the Fig. 4(c) programming model.

Builds a Cohet system (one CPU pool + one type-2 XPU over CXL), then
runs AXPY (Y = a*X + Y) exactly the way the paper's listing does:
plain ``malloc`` for both buffers, a kernel launch on the XPU, and the
CPU consuming the result directly — no cudaMemcpy, no pinned buffers,
no unified-memory page faults.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CohetSystem, Kernel, asic_system

N = 4096
ALPHA = 2.5


def axpy_kernel(ctx, _work_item, n, alpha, x_ptr, y_ptr):
    """The XPU kernel: operates on ordinary malloc'd pointers."""
    x = ctx.load_array(x_ptr, np.float32, n)
    y = ctx.load_array(y_ptr, np.float32, n)
    ctx.store_array(y_ptr, alpha * x + y)


def main():
    system = CohetSystem.build_default(asic_system())
    process = system.process

    # 1. Allocate coherent memory for X and Y (plain malloc).
    x_ptr = process.malloc(N * 4)
    y_ptr = process.malloc(N * 4)
    rng = np.random.default_rng(42)
    x = rng.random(N, dtype=np.float32)
    y = rng.random(N, dtype=np.float32)
    process.store_array(x_ptr, x)   # CPU first-touch: pages land on the CPU node
    process.store_array(y_ptr, y)

    # 2. Launch the AXPY kernel to a designated XPU.
    queue = system.queue("xpu0")
    queue.enqueue_task(Kernel("axpy", axpy_kernel), N, ALPHA, x_ptr, y_ptr)
    events = queue.finish()

    # 3. CPU consumes Y — same pointer, hardware-coherent.
    result = process.load_array(y_ptr, np.float32, N)
    expected = ALPHA * x + y
    assert np.allclose(result, expected, rtol=1e-6)

    print("AXPY on Cohet: OK")
    print(f"  elements            : {N}")
    print(f"  kernel device       : {events[0].device}")
    print(f"  kernel time (model) : {events[0].duration_ps / 1e6:.3f} us")
    print(f"  X placement (bytes per NUMA node): {process.placement(x_ptr, N * 4)}")
    print(f"  resident / mapped   : {process.resident_bytes()} / {process.mapped_bytes()} bytes")
    print(f"  max |err|           : {np.abs(result - expected).max():.2e}")

    process.free(x_ptr)
    process.free(y_ptr)


if __name__ == "__main__":
    main()
