#!/usr/bin/env python3
"""Workloads as declarative objects: generate, compose, record, replay.

The workload subsystem turns access patterns into registry entries the
same way topologies turned system shapes into data: a reference string
like ``"zipf(256,1.2)"`` names a seeded, deterministic stream of timed
memory operations, and the WorkloadDriver issues it through any
builder-constructed system — a multi-device fan-out here, and a
multi-host supernode whose hosts see coherent traffic (not just
leases) through the switch fabric.

Run:  python examples/workload_mix.py
"""

import tempfile
from pathlib import Path

from repro.config import fpga_system
from repro.workloads import WorkloadDriver, dump_trace, load_trace, phases, resolve_workload


def main():
    driver = WorkloadDriver(fpga_system())

    print("== traffic as a parameter: three generators, one topology ==")
    for ref in ("sequential(256)", "zipf(256,1.2)", "rw-mix(256,0.7)"):
        m = driver.run(ref, topology="fanout-2", seed=7, streams=2)
        print(f"{ref:<18} median {m.series['lat_median_ns']['all']:7.1f} ns, "
              f"aggregate {m.series['bandwidth_gbps']['all']:.3f} GB/s")
    print()

    print("== phase composition: one mixed-behavior stream ==")
    mix = phases(["sequential(128)", "zipf(128,1.2)", "producer-consumer(64,16)"])
    m = driver.run(mix, topology="fanout-2", seed=7)
    print(m.render())
    print()

    print("== record -> replay is bit-identical ==")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "mix.jsonl"
        dump_trace(resolve_workload("mixed(64)"), seed=7, path=trace_path)
        live = driver.run("mixed(64)", topology="fanout-2", seed=7)
        replayed = driver.run(load_trace(trace_path), topology="fanout-2", seed=99)
        print(f"live and replayed series equal: {live.series == replayed.series}")
    print()

    print("== coherent workload traffic through per-host supernode systems ==")
    m = driver.run("producer-consumer(128,16)", topology="supernode-2host", seed=7)
    print(m.render())
    print()
    print("Every scenario above is a registry entry plus a reference string —")
    print("new access patterns need no new harness.")


if __name__ == "__main__":
    main()
