#!/usr/bin/env python3
"""Re-run the hardware calibration methodology (§VI-A.4).

Demonstrates the calibration loop that produced the shipped presets:
pick a free model parameter, bisect it against a testbed reference
measurement, and report the before/after simulation error.  Here we
deliberately mis-tune the CXL PHY latency and let the calibrator
recover it from the LLC-hit latency target.

Run:  python examples/calibrate.py
"""

import dataclasses

from repro.calibration.calibrator import CalibrationTarget, Calibrator
from repro.calibration.microbench import CxlTestbench
from repro.calibration.reference import LOAD_LATENCY_NS
from repro.config import fpga_system
from repro.harness.experiments import simulation_error


def measure_llc_hit(phy_oneway_ps: float) -> float:
    """LLC-hit median latency (ns) with the given PHY latency."""
    config = fpga_system()
    device = dataclasses.replace(config.device, phy_oneway_ps=round(phy_oneway_ps))
    bench = CxlTestbench(config.replace(device=device))
    return bench.latency_llc_hit(trials=3).median_ns


def main():
    reference = LOAD_LATENCY_NS["CXL-FPGA@400MHz"]["llc_hit"]
    target = CalibrationTarget("llc_hit_ns", reference)

    detuned = measure_llc_hit(120_000)  # a bad initial guess
    print(f"reference LLC-hit latency : {reference:.1f} ns")
    print(f"with detuned PHY (120 ns) : {detuned:.1f} ns "
          f"({abs(detuned - reference) / reference * 100:.1f}% error)")

    calibrator = Calibrator(measure_llc_hit, target)
    fitted_phy, measured = calibrator.fit(50_000, 400_000)
    print(f"calibrated PHY one-way    : {fitted_phy / 1000:.1f} ns "
          f"({calibrator.evaluations} model evaluations)")
    print(f"calibrated LLC-hit median : {measured:.1f} ns "
          f"({abs(measured - reference) / reference * 100:.2f}% error)")
    print(f"shipped preset value      : 190.0 ns")
    print()

    print("Full calibration sweep with the shipped presets:")
    print(simulation_error().text)


if __name__ == "__main__":
    main()
