"""Example: declarative sweeps, cached re-runs, and run comparison.

Runs a small parameter sweep twice (the second invocation is served
entirely from the result cache), prints the markdown report, then runs
a variant sweep and renders the delta table between the two runs.

Usage::

    PYTHONPATH=src python examples/sweep_report.py
"""

import tempfile
from pathlib import Path

from repro.experiments import RunReport, SweepSpec, compare_runs, run_sweep

BASE = {
    "name": "example-base",
    "experiments": [
        {"experiment": "fig13", "grid": {"trials": [2, 3]}},
        {"experiment": "fig18a", "params": {"messages": 20}},
        {"experiment": "table1"},
    ],
}

VARIANT = {
    "name": "example-variant",
    "experiments": [
        {"experiment": "fig13", "grid": {"trials": [4]}},
        {"experiment": "fig18a", "params": {"messages": 40}},
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        runs = Path(tmp)
        base_dir = runs / "base"
        variant_dir = runs / "variant"

        outcome = run_sweep(SweepSpec.from_dict(BASE), base_dir, jobs=2,
                            progress=print)
        print(f"\nfirst pass: {outcome.total} specs, {outcome.cached} cached\n")

        # Same sweep again: every spec hash is already in the store.
        outcome = run_sweep(SweepSpec.from_dict(BASE), base_dir, jobs=2)
        print(f"second pass: {outcome.total} specs, {outcome.cached} cached\n")

        print(RunReport(base_dir).markdown())
        print()

        run_sweep(SweepSpec.from_dict(VARIANT), variant_dir, jobs=2)
        print(compare_runs(base_dir, variant_dir))


if __name__ == "__main__":
    main()
