#!/usr/bin/env python3
"""Profile the simulator hot path with cProfile, before/after style.

Runs the same small RPC simulation twice and prints the top functions
by self-time for each configuration:

* **baseline-style** — the observability-heavy configuration: full
  MESI transition validation and a per-request latency histogram flush
  (what the hot path looked like before the fast paths landed);
* **tuned** — MESI fast mode enabled (``set_fast_mode(True)``), i.e.
  what ``repro bench`` and large measurement sweeps run with.

Timing *results* are identical in both configurations — validation and
observability are passive — only the wall clock differs.  Use this
script as the template for hunting new hot spots: whatever leads the
"tottime" column is what the next optimization PR should attack.

Run:  python examples/profile_hotpath.py
"""

import cProfile
import io
import pstats
import time

from repro.cache.mesi import set_fast_mode
from repro.config import fpga_system
from repro.rpc.harness import run_rpc_comparison


def run_workload():
    """A small, deterministic RPC simulation (two HyperProtoBench sets)."""
    return run_rpc_comparison(fpga_system(), benches=("Bench0", "Bench1"), messages=60)


def profile(label: str, top: int = 12) -> float:
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    results = run_workload()
    profiler.disable()
    wall = time.perf_counter() - start

    sink = io.StringIO()
    stats = pstats.Stats(profiler, stream=sink).sort_stats("tottime")
    stats.print_stats(top)
    print(f"=== {label}: {wall * 1e3:.1f} ms wall ===")
    # Keep only the table (drop the pstats preamble noise).
    lines = sink.getvalue().splitlines()
    table_start = next(i for i, l in enumerate(lines) if "ncalls" in l)
    print("\n".join(lines[table_start : table_start + top + 1]))
    speedup = results["Bench0"].deser_speedup
    print(f"(sanity: Bench0 deserialization speedup = {speedup:.2f}x)\n")
    return wall


def main():
    baseline_wall = profile("baseline-style (strict MESI validation)")

    previous = set_fast_mode(True)
    try:
        tuned_wall = profile("tuned (MESI fast mode)")
    finally:
        set_fast_mode(previous)

    print(
        f"wall-clock delta: {baseline_wall * 1e3:.1f} ms -> {tuned_wall * 1e3:.1f} ms "
        f"({baseline_wall / tuned_wall:.2f}x)"
    )
    print("simulated results are bit-identical; only host time changes.")


if __name__ == "__main__":
    main()
