#!/usr/bin/env python3
"""NUMA latency mapping over CXL.cache (the Fig. 12 experiment).

Places pages on each of the eight SNC-4 NUMA nodes in turn and measures
the device's 64B load latency distribution, reproducing the testbed's
NUMA staircase (688 ns at the adjacent node up to 776 ns across UPI).

Run:  python examples/numa_latency_map.py
"""

from repro.calibration.microbench import CxlTestbench
from repro.config import fpga_system
from repro.interconnect.noc import NocTopology


def main():
    config = fpga_system()
    topology = NocTopology()
    print("Device attached adjacent to NUMA node", topology.device_node)
    print()
    print("node   median     p25     p75   socket  note")
    for node in range(8):
        bench = CxlTestbench(config, seed=500 + node)
        report = bench.latency_mem_hit(trials=15, node=node)
        socket = 0 if node < 4 else 1
        note = ""
        if node == topology.nearest_node():
            note = "<- nearest (device-adjacent)"
        elif node == topology.farthest_node():
            note = "<- farthest (UPI + 2 mesh hops)"
        elif socket == 0:
            note = "(remote socket: UPI crossing)"
        print(
            f"  {node}   {report.median_ns:6.1f}  {report.p25_ns:6.1f}"
            f"  {report.p75_ns:6.1f}      {socket}   {note}"
        )
    print()
    print("Takeaway: the default (SNC-disabled) allocator can scatter pages")
    print("across these nodes, so a CXL device sees up to ~90 ns of avoidable")
    print("latency per load — Cohet's NUMA-aware placement keeps pages close.")


if __name__ == "__main__":
    main()
