"""Example: live run status over a queue-backend sweep.

Launches a small sweep on the durable work queue in a background
thread, then polls ``collect_status`` while workers drain it — the same
loop ``repro status <run-dir> --watch`` runs — and finishes by
exporting the run's Chrome trace timeline (load it in
https://ui.perfetto.dev).

Usage::

    PYTHONPATH=src python examples/live_status.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro.experiments import SweepSpec, run_sweep
from repro.obs import collect_status, render_status, write_timeline

SWEEP = {
    "name": "live-status-demo",
    "repeats": 2,
    "experiments": [
        {"experiment": "fig13", "grid": {"trials": [2, 3]}},
        {"experiment": "table1"},
        {"experiment": "table2"},
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        sweep = SweepSpec.from_dict(SWEEP)

        worker = threading.Thread(
            target=run_sweep,
            args=(sweep, run_dir),
            kwargs={"backend": "queue", "jobs": 2},
        )
        worker.start()

        # Poll on-disk state while the run is in flight; everything
        # collect_status reads (telemetry, queue, store) is read-only.
        while True:
            status = collect_status(run_dir)
            print(render_status(status))
            print("-" * 60)
            if status["finished"]:
                break
            time.sleep(0.5)
        worker.join()

        out = write_timeline(run_dir)
        print(f"wrote Chrome trace timeline: {out}")
        print("open it in https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    main()
