"""Example: repeat-aware sweeps and significance-tested analysis.

Sweeps the same skewed workload over fanout(4) vs fanout(8) with 10
repeats per topology (each repeat gets a distinct deterministic seed),
then runs the statistical analysis: Mann-Whitney U contrasts per
metric with Holm-Bonferroni correction, Cliff's delta / A12 effect
sizes, bootstrap CIs on the median difference — and renders the
self-contained HTML report with per-metric distribution plots.

Usage::

    PYTHONPATH=src python examples/significance_report.py
"""

import tempfile
from pathlib import Path

from repro.experiments import RunAnalysis, SweepSpec, run_sweep
from repro.experiments.rendering import write_html_report

SWEEP = {
    "name": "example-significance",
    "repeats": 10,
    "base_seed": 1234,
    "experiments": [
        {
            "experiment": "workload-mix",
            # streams=8 so both fan-outs' LSU populations are actually
            # exercised; with fewer streams the extra devices idle and
            # the topologies tie exactly.
            "params": {"workload": "zipf(192,1.1)", "streams": 8},
            "grid": {"topology": ["fanout(4)", "fanout(8)"]},
        },
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        outcome = run_sweep(SweepSpec.from_dict(SWEEP), run_dir, jobs=2)
        print(f"sweep: {outcome.total} specs "
              f"({len(outcome.executed)} ran, {outcome.cached} cached)\n")

        analysis = RunAnalysis(run_dir)
        print(analysis.markdown())

        # The HTML report embeds deterministic SVG strip plots of every
        # varying metric; pass plots="matplotlib" for box plots when
        # matplotlib is installed.
        report = Path("significance_report.html")
        write_html_report(analysis, report)
        print(f"\nwrote {report.resolve()}")

        for comparison in analysis.significant:
            print(
                f"winner on {comparison.metric}: {comparison.verdict} "
                f"(p={comparison.p_adjusted:.2g}, A12={comparison.a12:.2f})"
            )


if __name__ == "__main__":
    main()
