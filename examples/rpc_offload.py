#!/usr/bin/env python3
"""RPC (de)serialization offloading: CXL-NIC vs. RpcNIC (§V-B).

Killer-app #2: six HyperProtoBench-style workloads run through four
offload designs — the PCIe RpcNIC baseline, and the CXL-NIC's NC-P
deserialization plus its three serialization paths (CXL.mem
construction, CXL.cache pulls with and without the multi-stride
prefetcher).  Messages are real protobuf wire bytes round-tripped
through the library's own codec.

Run:  python examples/rpc_offload.py
"""

from repro.config import asic_system
from repro.harness.tables import render_series
from repro.rpc.harness import run_rpc_comparison
from repro.rpc.hyperprotobench import BENCH_NAMES, make_bench


def main():
    config = asic_system()
    print("Workload profiles:")
    for name in BENCH_NAMES:
        bench = make_bench(name, messages=30)
        print(
            f"  {name}: ~{bench.mean_wire_bytes:6.0f} wire bytes, "
            f"{bench.mean_fields:4.1f} fields, "
            f"{bench.mean_nested:4.1f} nested messages"
        )
    print()

    results = run_rpc_comparison(config, messages=150)
    deser = {
        "RpcNIC (us)": {n: r.deser_rpcnic_us for n, r in results.items()},
        "CXL-NIC (us)": {n: r.deser_cxl_us for n, r in results.items()},
        "speedup": {n: r.deser_speedup for n, r in results.items()},
    }
    print(render_series("bench", deser, title="Deserialization (Fig. 18a)"))
    print()
    ser = {
        "RpcNIC (us)": {n: r.ser_rpcnic_us for n, r in results.items()},
        "CXL.mem (us)": {n: r.ser_cxl_mem_us for n, r in results.items()},
        "CXL.cache (us)": {n: r.ser_cxl_cache_us for n, r in results.items()},
        "CXL.cache+pf (us)": {n: r.ser_cxl_cache_pf_us for n, r in results.items()},
        "mem speedup": {n: r.ser_speedup_mem for n, r in results.items()},
        "pf gain %": {n: 100 * r.prefetch_gain for n, r in results.items()},
    }
    print(render_series("bench", ser, title="Serialization (Fig. 18b)"))
    print()
    avg = sum(r.deser_speedup for r in results.values()) / len(results)
    print(f"Average deserialization speedup: {avg:.2f}x (paper: ~1.86x overall)")


if __name__ == "__main__":
    main()
