#!/usr/bin/env python3
"""Outlook workloads (§VIII): graph processing and key-value offload.

Runs BFS, PageRank and a GET-heavy key-value workload functionally,
captures their cacheline traces, and replays them on the CXL.cache and
PCIe-DMA substrates — the fine-grained irregular access patterns the
paper names as the next Cohet killer apps.

Run:  python examples/graph_and_kvstore.py
"""

from repro.apps.graph import bfs_offload_study, pagerank_offload_study
from repro.apps.kvstore import kv_offload_study
from repro.config import asic_system
from repro.harness.tables import render_table


def main():
    config = asic_system()
    print("Running functional workloads and replaying their access traces...")
    studies = [
        bfs_offload_study(config, vertices=192, degree=4),
        pagerank_offload_study(config, vertices=96, degree=3),
        kv_offload_study(config, operations=600, keys=150),
    ]
    rows = [
        [
            s.name,
            s.accesses,
            f"{s.cxl_us:.1f}",
            f"{s.pcie_us:.1f}",
            f"{s.speedup:.1f}x",
            f"{s.hmc_hit_rate * 100:.0f}%",
        ]
        for s in studies
    ]
    print(
        render_table(
            ["workload", "accesses", "CXL (us)", "PCIe (us)", "speedup", "HMC hits"],
            rows,
            title="Coherent offload vs. DMA offload",
        )
    )
    print()
    print("Graph neighbour chasing and hash-table probing are exactly the")
    print("fine-grained random patterns where descriptor-driven DMA collapses")
    print("(one ordered 64B round trip per touch) while CXL.cache keeps hot")
    print("lines in the device HMC.")


if __name__ == "__main__":
    main()
