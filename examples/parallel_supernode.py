#!/usr/bin/env python3
"""Windowed-parallel supernode simulation: parity + speedup.

Drives the same coherent workload through a 4-host supernode three
ways — the legacy synchronous calendar, the windowed conservative
model in-process (``sim_parallel=1``), and the windowed model on
forked workers (``sim_parallel=4``) — then shows that the two windowed
runs are bit-identical (the CI-gated parity contract) while the forked
run uses every core the machine offers.

Run:  python examples/parallel_supernode.py
"""

import os
import time

from repro.config import asic_system
from repro.workloads import WorkloadDriver

TOPOLOGY = "supernode(4)"
WORKLOAD = "uniform(40000,2048)"


def run(driver, sim_parallel):
    start = time.perf_counter()
    measurement = driver.run(
        WORKLOAD,
        topology=TOPOLOGY,
        seed=1234,
        streams=4,
        sim_parallel=sim_parallel,
    )
    return measurement, time.perf_counter() - start


def main():
    driver = WorkloadDriver(asic_system())

    print(f"== {WORKLOAD} through {TOPOLOGY} ==")
    legacy, legacy_s = run(driver, sim_parallel=0)
    print(f"legacy calendar     : {legacy_s:.3f}s "
          f"({legacy.ops / legacy_s:,.0f} ops/s)")

    serial, serial_s = run(driver, sim_parallel=1)
    print(f"windowed, 1 worker  : {serial_s:.3f}s "
          f"({serial.ops / serial_s:,.0f} ops/s)")

    jobs = min(4, os.cpu_count() or 1)
    parallel, parallel_s = run(driver, sim_parallel=jobs)
    print(f"windowed, {jobs} workers : {parallel_s:.3f}s "
          f"({parallel.ops / parallel_s:,.0f} ops/s, "
          f"{serial_s / parallel_s:.2f}x vs 1 worker)")
    print()

    print("== the parity contract ==")
    identical = parallel.series == serial.series
    print(f"windowed 1-worker == windowed {jobs}-worker series: {identical}")
    assert identical, "windowed parity violated"
    per_host = serial.series["accesses"]
    shown = {k: v for k, v in sorted(per_host.items()) if k != "all"}
    print(f"per-host accesses: {shown}")
    print()
    if (os.cpu_count() or 1) < 2:
        print("(single-core machine: forked workers cannot beat 1 worker —")
        print(" the >=2x speedup target is asserted on the CI bench box)")
    else:
        print("Same results, more cores: conservative windows bound how far")
        print("hosts may drift, so worker count changes wall clock only.")


if __name__ == "__main__":
    main()
