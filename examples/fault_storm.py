#!/usr/bin/env python3
"""Faults as declarative objects: plans, degraded mode, recovery metrics.

The fault subsystem makes failure the third declarative axis of a
scenario, after shape (``topology``) and traffic (``workload``): a
reference string like ``"storm"`` or ``"link-degrade(8)"`` names a
schema-validated timeline of fault events — hosts going down and
coming back, links degrading or flapping, messages corrupting — and a
FaultController installs it against any builder-constructed system.
Strict mode (the default everywhere) keeps today's fail-loud
semantics; degraded mode opts into bounded retry-with-backoff so
workloads complete *through* the failure and report availability and
recovery metrics.

Run:  python examples/fault_storm.py
"""

from repro.config import asic_system, fpga_system
from repro.core.supernode import HostDownError
from repro.faults import fault_plan_by_name
from repro.workloads import WorkloadDriver


def main():
    print("== the plan: a declarative failure timeline ==")
    print(fault_plan_by_name("storm").describe())
    print()

    print("== strict mode fails loud (the default, unchanged) ==")
    driver = WorkloadDriver(asic_system())
    try:
        driver.run(
            "producer-consumer(96,24)", topology="supernode-2host",
            fault="host-outage",
        )
    except HostDownError as exc:
        print(f"raised as expected: {exc}")
    print()

    print("== degraded mode: the workload completes through the outage ==")
    m = driver.run(
        "producer-consumer(96,24)", topology="supernode-2host",
        fault="host-outage", fault_mode="degraded",
    )
    print(m.render())
    avail = m.series["availability"]
    recov = m.series["recovery"]
    print(f"availability : {avail['completed']:.0f}/{avail['attempted']:.0f} "
          f"ops completed ({avail['rate']:.1%}), "
          f"{avail['retries']:.0f} retries, {avail['dropped']:.0f} dropped")
    print(f"recovery     : {recov['degraded_us']:.1f} us degraded, "
          f"{recov['settle_us']:.2f} us post-recovery settling")
    print()

    print("== the combined drill on a fan-out topology ==")
    m = WorkloadDriver(fpga_system()).run(
        "zipf(96,1.2)", topology="fanout-2", streams=2,
        fault="storm", fault_mode="degraded",
    )
    print(m.render())
    print("(supernode-only storm events are inert here: "
          f"{m.series['recovery']['unmatched_events']:.0f} unmatched)")
    print()
    print("Failure scenarios are registry entries plus reference strings —")
    print("`repro sweep fault-tolerance` sweeps them like any parameter.")


if __name__ == "__main__":
    main()
