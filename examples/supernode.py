#!/usr/bin/env python3
"""Supernode composition: hosts sharing fabric-attached memory (§VIII).

Two hosts behind CXL switches lease memory from a fabric pool (capacity
scaling without touching either server) and share data through the
two-level coherence hierarchy: local agents absorb repeat traffic, the
global agent at the root switch arbitrates sharing.

Run:  python examples/supernode.py
"""

from repro.config import asic_system
from repro.core.supernode import Supernode


def main():
    node = Supernode(asic_system(), hosts=2, fabric_memory_bytes=4 << 30)

    print("== capacity scaling via fabric-attached memory ==")
    before = node.total_capacity_bytes("host0")
    leased_node = node.lease_memory("host0", 1 << 30)
    after = node.total_capacity_bytes("host0")
    print(f"host0 capacity: {before >> 30} GB -> {after >> 30} GB "
          f"(leased NUMA node {leased_node})")
    print(f"fabric pool remaining: {node.free_fabric_bytes >> 30} GB")
    print(f"holdings: {node.utilization()}")
    print()

    print("== cross-host coherent sharing ==")
    shared = 0x9000
    t0 = node.coherent_access("host0", shared)
    t1 = node.coherent_access("host0", shared)
    print(f"host0 first access : {t0 / 1000:.0f} ns over the fabric")
    print(f"host0 repeat access: {t1 / 1000:.0f} ns (local-agent replica)")
    tw = node.coherent_access("host1", shared, exclusive=True)
    print(f"host1 write        : {tw / 1000:.0f} ns (invalidates host0)")
    tr = node.coherent_access("host0", shared)
    print(f"host0 re-read      : {tr / 1000:.0f} ns (replica was invalidated)")
    print()

    print("== traffic filtering at scale ==")
    for round_ in range(64):
        for i, host in enumerate(sorted(node.hosts)):
            node.coherent_access(host, 0x100000 * (i + 1) + (round_ % 8) * 64)
    for host, entry in sorted(node.hosts.items()):
        agent = node.domain.locals[node._child_of[host]]
        print(f"{host}: filter rate {agent.filter_rate * 100:.0f}% "
              f"({agent.local_hits} local hits / {agent.global_requests} global)")
    print()
    print("Local agents keep working-set traffic off the fabric — the")
    print("hierarchical-coherence mitigation §VIII proposes for supernodes.")


if __name__ == "__main__":
    main()
