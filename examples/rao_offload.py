#!/usr/bin/env python3
"""Remote atomic operation offloading: CXL-NIC vs. PCIe-NIC (§V-A).

Replays the paper's killer-app #1: the six CircusTent AMO patterns are
offloaded to both NIC designs and the throughput speedup of the
CXL-NIC is reported (Fig. 17's experiment at example scale).

Run:  python examples/rao_offload.py
"""

from repro.config import asic_system
from repro.harness.tables import render_series
from repro.rao.circustent import CIRCUSTENT_PATTERNS
from repro.rao.harness import run_rao_comparison


def main():
    config = asic_system()
    print("Running six CircusTent patterns on PCIe-NIC and CXL-NIC...")
    results = run_rao_comparison(config, ops=1024)

    series = {
        "PCIe-NIC Mops": {p: results[p].pcie_mops for p in CIRCUSTENT_PATTERNS},
        "CXL-NIC Mops": {p: results[p].cxl_mops for p in CIRCUSTENT_PATTERNS},
        "speedup": {p: results[p].speedup for p in CIRCUSTENT_PATTERNS},
        "HMC hit rate": {p: results[p].cxl_hit_rate for p in CIRCUSTENT_PATTERNS},
    }
    print(render_series("pattern", series, title="CXL-based RAO vs PCIe-based RAO"))
    print()
    print("Reading the table:")
    print(" - CENTRAL (a distributed lock service) caches its hot line in the")
    print("   HMC, avoiding every PCIe crossing -> the ~40x peak speedup.")
    print(" - STRIDE1 amortizes one line fetch over eight 8-byte atomics.")
    print(" - RAND defeats the cache entirely, yet still wins ~5.5x because a")
    print("   coherent 64B fetch is far cheaper than two ordered DMA transfers.")


if __name__ == "__main__":
    main()
