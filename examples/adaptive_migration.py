#!/usr/bin/env python3
"""Adaptive page migration (the optimization §III-C.2 defers).

A producer/consumer hand-off: the CPU initializes a buffer (first touch
places it on the CPU node), then the XPU becomes the dominant accessor.
The adaptive migrator notices and moves the hot pages to the XPU node
through the full ATS handshake (block device, remap, IOMMU/ATC
invalidation, resume).

Run:  python examples/adaptive_migration.py
"""

from repro import CohetSystem, asic_system
from repro.kernel.migration import AdaptiveMigrator
from repro.kernel.page_table import PAGE_SIZE


def main():
    system = CohetSystem.build_default(asic_system())
    process = system.process
    driver = system.driver("xpu0")
    xpu_node = driver.memory_node
    migrator = AdaptiveMigrator(system.hmm, min_samples=12)

    pages = 8
    buf = process.malloc(pages * PAGE_SIZE)

    # Phase 1: CPU initializes -> first touch on the CPU node.
    for page in range(pages):
        process.write_bytes(buf + page * PAGE_SIZE, b"init", accessor_node=0)
    print("after CPU init     :", process.placement(buf, pages * PAGE_SIZE))

    # Phase 2: the XPU hammers the buffer; pages should follow it.
    for sweep in range(30):
        for page in range(pages):
            vaddr = buf + page * PAGE_SIZE
            system.hmm.touch(vaddr, accessor_node=xpu_node)
            migrator.record_access(vaddr, accessor_node=xpu_node)
    print("after XPU phase    :", process.placement(buf, pages * PAGE_SIZE))
    print(f"migrations         : {migrator.migrations_performed}")
    print(f"ATC invalidations  : {driver.atc.invalidated + system.iommu.invalidations}")
    for decision in migrator.decisions[:3]:
        print(
            f"  vpn {decision.vpn:#x}: node {decision.from_node} -> "
            f"{decision.to_node} ({decision.remote_share * 100:.0f}% remote, "
            f"{decision.samples} samples)"
        )
    print()
    print("The unified page table plus ATS lets the OS move pages under a")
    print("running device without stopping it: exactly the HMM callback")
    print("protocol of §III-C.2.")


if __name__ == "__main__":
    main()
