"""Build a custom system topology and measure it.

Demonstrates the three steps of the construction layer:

1. declare a Topology (named nodes of registered component kinds),
2. build it with SystemBuilder against a calibrated config,
3. drive the constructed components directly.

Also registers the layout under a name so ``topology_by_name`` (and
therefore any code that takes a topology name) can build it, and
round-trips the layout through its JSON form — the same format the
shipped ``examples/topologies/*.json`` files use.

Run with: PYTHONPATH=src python examples/custom_topology.py
"""

import tempfile
from pathlib import Path

from repro.config import fpga_system
from repro.system import (
    LinkSpec,
    NodeSpec,
    SystemBuilder,
    Topology,
    dump_topology,
    load_topology,
    register_topology,
    topology_by_name,
)


@register_topology("lab-bench")
def lab_bench_topology(seed: int = 42) -> Topology:
    """One coherent accelerator + one PCIe DMA engine on a host."""
    return Topology(
        name="lab-bench",
        description="example: accelerator vs. DMA on one host",
        nodes=(
            NodeSpec("host", "host", {"seed": seed}),
            NodeSpec("acc0", "cxl.type1"),
            NodeSpec("lsu0", "lsu", {"device": "acc0"}),
            NodeSpec("dma", "dma"),
        ),
        links=(
            LinkSpec("lsu0", "acc0", "d2h"),
            LinkSpec("acc0", "host", "cxl.flexbus"),
            LinkSpec("dma", "host", "pcie"),
        ),
    )


def main() -> None:
    topology = topology_by_name("lab-bench")
    print(topology.describe())
    print()

    system = SystemBuilder(fpga_system()).build(topology)
    lsu = system.node("lsu0")
    dma = system.node("dma")

    # Coherent loads: miss the HMC, miss the LLC, hit host memory.
    addrs = lsu.sequential_lines(0x200000, 32)
    for addr in addrs:
        system.llc.flush(addr)
    loads = lsu.run_latency(addrs)
    print(f"CXL.cache mem-hit load latency : {loads.median_ns:8.1f} ns")

    # The same 64 B granule over descriptor-driven PCIe DMA.
    transfer = dma.measure_latency(64, repeats=9)
    print(f"PCIe DMA 64B read latency      : {transfer.median_ns:8.1f} ns")
    ratio = transfer.median_ns / loads.median_ns
    print(f"coherent loads are {ratio:.1f}x faster at cacheline granularity")

    # Topologies are data: dump to JSON, reload, and build the same
    # system (drop the file in examples/topologies/ to auto-register).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "lab-bench.json"
        dump_topology(topology, path)
        reloaded = load_topology(path)
    assert reloaded == topology
    rebuilt = SystemBuilder(fpga_system()).build(reloaded)
    print(f"JSON round trip rebuilt {len(rebuilt.nodes)} identical nodes")


if __name__ == "__main__":
    main()
